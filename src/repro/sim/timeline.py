"""The execution timeline: content-keyed stages and the checkpoint tree.

The sweep pipeline's heaviest experiments replay near-identical
simulation prefixes: every point of a paired delta sweep rebuilds the
same baseline network, and a sweep over round counts rebuilds rounds
``1..k-1`` to sample round ``k``.  This module generalizes the PR 3
"baseline phase → perturbation phase" warm start into an explicit
**execution timeline**:

* :func:`build_plan` turns one (point, seed)'s
  :func:`~repro.sim.scenarios.scenario_phases` output into a
  :class:`TracePlan` — a list of :class:`Stage`\\ s (the placement/join
  stage followed by one stage per perturbation round), each carrying a
  **content key** chained from its predecessor's.  Two tasks share a
  prefix *iff* their stage-key chains share a prefix, so sharing is
  decided from what the traces actually contain, never from which sweep
  axis produced them — a divergent trace (an axis that turns out to
  affect placement or earlier rounds) simply keys apart and executes
  cold.
* :func:`compute_group` executes a set of plans over one
  :class:`CheckpointTree`: each stage boundary whose key more than one
  plan traverses is checkpointed (a
  :meth:`~repro.sim.network.MultiStrategyReplay.fork` of the full
  replay state), and every plan resumes from the deepest checkpoint its
  chain hits instead of replaying from cold.  Results are byte-identical
  to cold execution (pinned by ``tests/sim/test_timeline.py``); only
  redundant work is skipped.

This subsumes the former warm-group special case: a paired delta sweep's
points share their placement/join stage exactly as before, while sweeps
over round-structured axes (``steps``, ``cycles``) additionally chain
through the shared earlier rounds — point ``k`` forks from point
``k-1``'s last common round instead of replaying ``k-1`` rounds from the
baseline.  :func:`prefix_token` is the *plan-time* shadow of the join
stage's content key: a digest of exactly the spec fields the placement
draw and join trace consume, letting
:func:`repro.sim.sweep.plan_tasks` group tasks by shared prefix without
drawing any traces.

Checkpoints are conflict-core independent: a fork deep-copies whichever
core the replay's digraph runs (dict, dense, array, or the sparse CSR
rows — :meth:`~repro.topology.digraph.AdHocDigraph.copy` clones the
per-slot rows and witness counters without densifying), and serialized
checkpoints restore under any core byte-identically, so a sweep
resumed under ``REPRO_SPARSE=1`` continues checkpoints written by an
array-core worker and vice versa (pinned by
``tests/sim/test_array_replay.py``).
"""

from __future__ import annotations

import hashlib
import json
import os
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import ConfigurationError
from repro.obs import metrics as _met
from repro.sim.metrics import MetricsSnapshot
from repro.sim.network import MultiStrategyReplay
from repro.sim.scenarios import ScenarioSpec, TracePhases, scenario_plan
from repro.sim.trace import event_to_dict
from repro.strategies import make_strategy

__all__ = [
    "CheckpointTree",
    "Stage",
    "TracePlan",
    "build_plan",
    "compute_group",
    "compute_point",
    "plan_from_phases",
    "prefix_token",
    "stage_key",
]


# ----------------------------------------------------------------------
# Stages and plans
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Stage:
    """One checkpointable segment of a run's event trace.

    ``kind`` is ``"join"`` (the placement draw's sequential join phase)
    or ``"round"`` (one perturbation round); ``index`` is 0 for the join
    stage and the 1-based round number otherwise.  ``key`` is the
    content hash of the *chain up to and including* this stage — it
    commits to every event applied so far plus the strategy lineup, so
    equal keys guarantee byte-identical replay state.
    """

    kind: str
    index: int
    events: tuple
    key: str


@dataclass(frozen=True)
class TracePlan:
    """One run's workload as a staged, content-keyed timeline.

    The staged successor of :class:`~repro.sim.scenarios.TracePhases`:
    same events in the same order, but segmented into
    :class:`Stage`\\ s whose key chain is what the checkpoint tree
    shares across tasks.  ``measure`` and ``strategies`` ride along so a
    plan is self-contained for execution and serialization
    (:func:`repro.sim.trace.save_trace` round-trips staged plans).
    """

    stages: tuple[Stage, ...]
    strategies: tuple[str, ...]
    measure: str

    @property
    def stage_keys(self) -> tuple[str, ...]:
        """The content-key chain, one entry per stage."""
        return tuple(stage.key for stage in self.stages)

    @property
    def baseline(self) -> tuple:
        """The join stage's events (empty for a stage-less plan)."""
        return self.stages[0].events if self.stages else ()

    @property
    def rounds(self) -> tuple[tuple, ...]:
        """The perturbation rounds' event tuples, in order."""
        return tuple(stage.events for stage in self.stages[1:])

    @property
    def events(self) -> list:
        """The flat event sequence (all stages, in order)."""
        return [event for stage in self.stages for event in stage.events]


def _digest(payload) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:20]


def stage_key(parent: str, kind: str, index: int, events: Sequence) -> str:
    """The content key of one stage, chained from its predecessor's.

    Hashes the serialized events together with the parent key, so a key
    commits to the entire event prefix: two stages compare equal exactly
    when everything replayed up to their boundary is byte-identical.
    """
    return _digest(
        {
            "parent": parent,
            "kind": kind,
            "index": index,
            "events": [event_to_dict(event) for event in events],
        }
    )


def plan_from_phases(
    phases: TracePhases, *, strategies: Sequence[str], measure: str
) -> TracePlan:
    """Segment a phased trace into a content-keyed :class:`TracePlan`.

    The chain root commits to the strategy lineup *and* the measure
    (checkpointed replay state embeds one lane per strategy plus
    measure-shaped sampling state — the per-round sample lists of
    ``delta_rounds`` — so states are only interchangeable between
    identically-configured walks); the join stage commits to the
    placement draw via its join events, and every round stage extends
    the chain.
    """
    root = _digest({"strategies": list(strategies), "measure": measure})
    stages = [Stage("join", 0, tuple(phases.baseline), stage_key(root, "join", 0, phases.baseline))]
    for t, round_events in enumerate(phases.rounds, start=1):
        stages.append(
            Stage(
                "round",
                t,
                tuple(round_events),
                stage_key(stages[-1].key, "round", t, round_events),
            )
        )
    return TracePlan(stages=tuple(stages), strategies=tuple(strategies), measure=measure)


def build_plan(point: ScenarioSpec, seed) -> TracePlan:
    """One (resolved point, seed)'s staged workload.

    Draws the trace exactly as cold execution would
    (:func:`~repro.sim.scenarios.scenario_plan` under
    ``np.random.default_rng(seed)``), so the plan's flat event sequence
    is byte-identical to the unstaged one.
    """
    return scenario_plan(point, np.random.default_rng(seed))


def prefix_token(point: ScenarioSpec, seed) -> str:
    """Plan-time token of the placement/join prefix, without drawing it.

    Digests exactly what the placement draw and join trace consume — the
    node count, arena, range interval, placement law, the seed, and the
    strategy lineup the checkpointed state embeds.  Two (point, seed)
    tasks with equal tokens produce byte-identical join stages, so the
    planner groups them for prefix sharing; fields the token excludes
    (mobility, churn, power, measure) only shape *later* stages, whose
    sharing the content keys decide at execution time.
    """
    from repro.sim.results import seed_token

    placement = point.placement
    return _digest(
        {
            "seed": seed_token(seed),
            "n": point.n,
            "area": list(point.area),
            "min_range": point.min_range,
            "max_range": point.max_range,
            "placement": [
                placement.kind,
                placement.cluster_rate,
                placement.cluster_sigma,
                placement.hotspot_fraction,
                placement.hotspot_radius,
            ],
            "strategies": list(point.strategies),
        }
    )


# ----------------------------------------------------------------------
# Execution state and the checkpoint tree
# ----------------------------------------------------------------------
class _ExecState:
    """The full execution cursor of one task at a stage boundary.

    Wraps the replay (graph + lanes) together with the measurement state
    the walk accumulates: the post-join metric baselines delta measures
    subtract from, and the per-round samples of ``delta_rounds``
    measures.  Forking copies all three, so a checkpoint taken at any
    boundary resumes with the measurement context intact — a task that
    forks at round ``j`` still reports deltas against the join-stage
    baseline it never replayed itself.
    """

    __slots__ = ("replay", "baselines", "samples", "base_key", "base_version")

    def __init__(
        self,
        replay: MultiStrategyReplay,
        baselines: list | None = None,
        samples: list[list[list[float]]] | None = None,
    ) -> None:
        self.replay = replay
        self.baselines = baselines
        self.samples = [] if samples is None else samples
        # The last *serialized* boundary on this state's lineage — the
        # anchor the next delta payload is cut against.  ``None``/0 means
        # "the fresh pre-join state" (graph version 0).
        self.base_key: str | None = None
        self.base_version: int = 0

    @classmethod
    def fresh(cls, strategies: Sequence[str]) -> "_ExecState":
        return cls(MultiStrategyReplay([make_strategy(name) for name in strategies]))

    def fork(self) -> "_ExecState":
        """An independent continuation (copy-on-write graph, samples copied)."""
        clone = _ExecState(
            self.replay.fork(),
            None if self.baselines is None else list(self.baselines),
            [list(lane_samples) for lane_samples in self.samples],
        )
        clone.base_key = self.base_key
        clone.base_version = self.base_version
        return clone

    def delta_payload(self) -> dict:
        """This boundary serialized as a delta against ``base_key``.

        ``replay`` holds only the graph slots touched since
        ``base_version`` (plus the full lane state, which is O(N) and
        dominated by the O(N²)/O(N+E) graph it avoids copying); applying
        the chain root-to-leaf onto a fresh state reproduces this
        boundary byte-identically on any conflict core.
        """
        return {
            "schema": 1,
            "kind": "exec-delta",
            "base": self.base_key,
            "base_version": self.base_version,
            "version": self.replay.version,
            "replay": self.replay.delta_snapshot(self.base_version),
            "baselines": _encode_baselines(self.baselines),
            "samples": [[list(t) for t in lane] for lane in self.samples],
        }

    def nbytes(self) -> int:
        """Estimated live footprint (the LRU budget's unit of account)."""
        total = self.replay.graph.state_nbytes()
        for lane in self.replay.lanes:
            total += 64 * len(lane.metrics.records)
        return total

    def apply_stage(self, stage: Stage, measure: str) -> None:
        """Replay one stage's events and record its measurement state."""
        replay = self.replay
        for event in stage.events:
            replay.apply(event)
        if stage.kind == "join":
            # the post-baseline snapshot every delta measure subtracts from
            self.baselines = [lane.metrics.snapshot() for lane in replay.lanes]
            if measure == "delta_rounds":
                self.samples = [[] for _ in replay.lanes]
        elif measure == "delta_rounds":
            for i, (before, lane) in enumerate(zip(self.baselines, replay.lanes)):
                self.samples[i].append(_delta_triple(before, lane))

    def result(self, measure: str) -> list:
        """The member result in the executor's wire shape."""
        lanes = self.replay.lanes
        if measure == "absolute":
            return [
                [
                    float(lane.assignment.max_color()),
                    float(lane.metrics.total_recodings),
                    float(lane.metrics.total_messages),
                ]
                for lane in lanes
            ]
        if measure == "delta":
            return [_delta_triple(before, lane) for before, lane in zip(self.baselines, lanes)]
        return [list(lane_samples) for lane_samples in self.samples]


def _delta_triple(before, lane) -> list[float]:
    delta = before.delta(lane.metrics.snapshot())
    return [
        float(delta.max_color),
        float(delta.total_recodings),
        float(delta.total_messages),
    ]


def _encode_baselines(baselines: list | None) -> list | None:
    if baselines is None:
        return None
    return [[b.events, b.total_recodings, b.total_messages, b.max_color] for b in baselines]


def _decode_baselines(data: list | None) -> list | None:
    if data is None:
        return None
    return [MetricsSnapshot(int(e), int(r), int(m), int(c)) for e, r, m, c in data]


def _ckpt_budget_bytes() -> int | None:
    raw = os.environ.get("REPRO_CKPT_MEM_MB", "").strip()
    if not raw:
        return None
    return int(float(raw) * 1_000_000)


class CheckpointTree:
    """Checkpointed replay states, addressed by stage key.

    The tree of one task group's execution: node identity is the stage
    key (which commits to the whole event prefix, so the "tree"
    structure is implicit in the key chains), node payload is a frozen
    :class:`_ExecState` fork.  A checkpoint stored with a ``consumers``
    budget is reference-counted: each resume decrements it, the final
    consumer takes the stored state *by move* (no fork), and the node
    is evicted — so a K-point round chain holds one live checkpoint at
    a time instead of K.  Checkpoints stored without a budget are
    pinned (externally threaded trees).  ``hits``/``stored``/``evicted``
    feed the bench and tests.

    With a ``store`` (a results backend exposing
    ``put_checkpoint``/``get_checkpoint``) or a byte budget
    (``max_bytes``, defaulting from ``REPRO_CKPT_MEM_MB``), the tree
    additionally keeps every checkpointed boundary as a **(base key,
    delta) chain link**: an O(changes) payload cut against the previous
    serialized boundary on the same lineage.  Chain links make live
    states evictable (an evicted boundary is rebuilt by walking its
    chain back to the fresh root and applying payloads forward) and —
    through the store — durable and shared, so a second process or host
    resumes a boundary some other worker walked.  Without a store or
    budget the tree behaves exactly as before: live forks only, no
    serialization.
    """

    def __init__(self, *, store=None, max_bytes: int | None = None) -> None:
        self._states: dict[str, _ExecState] = {}  # insertion order doubles as LRU order
        self._consumers: dict[str, int] = {}
        self._nbytes: dict[str, int] = {}
        self._chains: dict[str, dict] = {}
        self._store = store
        self._max_bytes = _ckpt_budget_bytes() if max_bytes is None else max_bytes
        self.hits = 0
        self.stored = 0
        self.evicted = 0
        self.delta_stored = 0
        self.delta_applied = 0
        self.delta_bytes = 0
        self.rebuilds = 0

    def __contains__(self, key: str) -> bool:
        return key in self._states

    def __len__(self) -> int:
        return len(self._states)

    @property
    def chained(self) -> bool:
        """Whether boundaries are serialized as delta chains."""
        return self._store is not None or self._max_bytes is not None

    def checkpoint(
        self, key: str, state: _ExecState, *, consumers: int | None = None, live: bool = True
    ) -> None:
        """Record ``state``'s boundary under ``key`` (first writer wins).

        ``consumers`` is the number of resumes expected at this
        boundary; ``None`` pins the checkpoint for the tree's lifetime.
        When the tree is chained, the boundary is also serialized as a
        delta link (and written through to the store, if any);
        ``live=False`` records only the link — used for boundaries no
        plan in *this* group resumes from, but a later process might.
        """
        if self.chained and key not in self._chains:
            self._chains[key] = self._persist(key, state)
        if not live:
            return
        if key not in self._states:
            self._states[key] = state.fork()
            self._nbytes[key] = state.nbytes()
            self.stored += 1
            if consumers is not None:
                self._consumers[key] = consumers
            self._enforce_budget(keep=key)

    def _persist(self, key: str, state: _ExecState) -> dict:
        """Cut ``state``'s delta link, write it through, advance its anchor."""
        with obs.span("ckpt.serialize", cat="ckpt", key=key):
            payload = state.delta_payload()
            self.delta_stored += 1
            self.delta_bytes += len(json.dumps(payload, separators=(",", ":")))
            if self._store is not None:
                self._store.put_checkpoint(key, payload)
        # Future boundaries on this lineage chain from here.
        state.base_key = key
        state.base_version = payload["version"]
        return payload

    def _chain_entry(self, key: str) -> dict | None:
        entry = self._chains.get(key)
        if entry is None and self._store is not None:
            entry = self._store.get_checkpoint(key)
            if entry is not None:
                self._chains[key] = entry
        return entry

    def _rebuild(self, key: str, strategies: Sequence[str]) -> _ExecState:
        """Reconstruct an evicted/remote boundary from its delta chain."""
        chain = []
        k = key
        while k is not None:
            entry = self._chain_entry(k)
            if entry is None:
                raise ConfigurationError(
                    f"checkpoint chain for {key} is broken: link {k} is missing"
                )
            chain.append(entry)
            k = entry["base"]
        state = _ExecState.fresh(strategies)
        with obs.span("ckpt.restore", cat="ckpt", key=key, links=len(chain)):
            for entry in reversed(chain):
                state.replay.apply_delta(entry["replay"])
                self.delta_applied += 1
        leaf = chain[0]
        state.baselines = _decode_baselines(leaf["baselines"])
        state.samples = [[list(t) for t in lane] for lane in leaf["samples"]]
        state.base_key = key
        state.base_version = leaf["version"]
        self.rebuilds += 1
        return state

    def _enforce_budget(self, *, keep: str | None = None) -> None:
        """Evict least-recently-used live states past ``max_bytes``.

        Only runs when chained (every live state then has a chain link
        to rebuild from), and never evicts the state just stored.
        """
        if self._max_bytes is None:
            return
        total = sum(self._nbytes.values())
        for key in list(self._states):
            if total <= self._max_bytes:
                return
            if key == keep:
                continue
            del self._states[key]
            total -= self._nbytes.pop(key)
            self.evicted += 1

    def _consume(self, key: str) -> None:
        """Decrement a rebuilt boundary's consumer budget (no live state)."""
        left = self._consumers.get(key)
        if left is not None:
            if left <= 1:
                del self._consumers[key]
            else:
                self._consumers[key] = left - 1

    def resume(self, plan: TracePlan) -> tuple[_ExecState, int]:
        """Continue from the deepest checkpoint on ``plan``'s chain.

        Returns ``(state, start)`` where ``start`` is the index of the
        first stage still to replay — ``(fresh state, 0)`` when no
        prefix is checkpointed.  A consumer-counted checkpoint's final
        resume receives the stored state itself and evicts the node;
        earlier resumes (and pinned checkpoints) receive forks.  On a
        chained tree, a boundary with no live state (evicted under the
        byte budget, or written by another process into the store) is
        rebuilt from its delta chain.
        """
        for i in range(len(plan.stages) - 1, -1, -1):
            key = plan.stages[i].key
            cached = self._states.get(key)
            if cached is None:
                if self.chained and self._chain_entry(key) is not None:
                    state = self._rebuild(key, plan.strategies)
                    self.hits += 1
                    self._consume(key)
                    return state, i + 1
                continue
            self.hits += 1
            left = self._consumers.get(key)
            if left is not None and left <= 1:
                del self._states[key]
                self._nbytes.pop(key, None)
                del self._consumers[key]
                self.evicted += 1
                return cached, i + 1  # last consumer: take it by move
            if left is not None:
                self._consumers[key] = left - 1
            self._states[key] = self._states.pop(key)  # refresh LRU position
            return cached.fork(), i + 1
        return _ExecState.fresh(plan.strategies), 0


# ----------------------------------------------------------------------
# Computation kernel
# ----------------------------------------------------------------------
def compute_point(point: ScenarioSpec, seed) -> list:
    """Cold-compute one (point, run): the unshared timeline walk."""
    plan = build_plan(point, seed)
    state = _ExecState.fresh(plan.strategies)
    for stage in plan.stages:
        state.apply_stage(stage, plan.measure)
    if _met.ENABLED:
        _met.REGISTRY.inc("timeline.rounds.replayed", len(plan.stages))
    return state.result(plan.measure)


def compute_group(
    points: Sequence[ScenarioSpec],
    seed,
    *,
    share: bool = True,
    on_member=None,
    tree: CheckpointTree | None = None,
    store=None,
) -> list[list]:
    """Execute one task group's members; returns results in member order.

    With ``share`` (the default for warm-planned groups) all members'
    plans are built first, every stage key traversed by more than one
    plan becomes a checkpoint when first reached, and each member
    resumes from the deepest checkpoint its chain hits.  Because keys
    are content-derived, a member whose trace diverges (a sweep axis
    that does affect placement or an earlier round) shares nothing and
    replays cold — sharing can only skip redundant work, never change
    results.

    ``on_member(index, result)`` fires after each member completes (the
    executors' persist-and-renew hook); ``tree`` lets callers thread one
    checkpoint tree through several calls (the bench does).  ``store``
    (a results backend with a checkpoint table) makes the tree chained:
    every in-group boundary plus each plan's join and final stages are
    written through as delta links, and resume consults the store — so
    a different process or host that already walked a shared prefix
    saves this group the replay.
    """
    results: list[list] = []

    def _landed(out: list) -> list:
        if on_member is not None:
            on_member(len(results), out)
        results.append(out)
        return out

    if not share or len(points) == 1:
        for point in points:
            _landed(compute_point(point, seed))
        return results
    plans = [build_plan(point, seed) for point in points]
    needed = _resume_boundaries(plans)
    if tree is None:
        tree = CheckpointTree(store=store)
    # tree counters are cumulative (callers may thread one tree through
    # many groups), so the metrics record this walk's delta only
    stored0, hits0, evicted0 = tree.stored, tree.hits, tree.evicted
    dstored0, dapplied0, dbytes0 = tree.delta_stored, tree.delta_applied, tree.delta_bytes
    chained = tree.chained
    for plan in plans:
        state, start = tree.resume(plan)
        last = len(plan.stages) - 1
        for idx in range(start, len(plan.stages)):
            stage = plan.stages[idx]
            state.apply_stage(stage, plan.measure)
            consumers = needed.get(stage.key)
            if consumers:
                tree.checkpoint(stage.key, state, consumers=consumers)
            elif chained and (idx == 0 or idx == last):
                # Boundaries no plan here resumes from, but a sibling
                # worker draining an adjacent group might: the shared
                # join prefix and the deepest state this plan reaches.
                tree.checkpoint(stage.key, state, live=False)
        if _met.ENABLED:
            _met.REGISTRY.inc("timeline.rounds.saved", start)
            _met.REGISTRY.inc("timeline.rounds.replayed", len(plan.stages) - start)
        _landed(state.result(plan.measure))
    if _met.ENABLED:
        _met.REGISTRY.inc("timeline.checkpoint.stored", tree.stored - stored0)
        _met.REGISTRY.inc("timeline.checkpoint.hits", tree.hits - hits0)
        _met.REGISTRY.inc("timeline.checkpoint.evicted", tree.evicted - evicted0)
        if chained:
            _met.REGISTRY.inc("timeline.checkpoint.bytes", tree.delta_bytes - dbytes0)
            _met.REGISTRY.inc("ckpt.delta.stored", tree.delta_stored - dstored0)
            _met.REGISTRY.inc("ckpt.delta.applied", tree.delta_applied - dapplied0)
            _met.REGISTRY.inc("ckpt.delta.bytes", tree.delta_bytes - dbytes0)
    return results


def _resume_boundaries(plans: Sequence[TracePlan]) -> dict[str, int]:
    """``{stage key: resume count}`` for boundaries later plans fork from.

    Checkpointing is a full state fork (graph arrays + every lane's
    history), so storing every shared boundary wastes most of the work:
    in a linear round chain only the *deepest* boundary a plan shares
    with its predecessors is ever forked — shallower shared stages are
    shadowed.  Because stage keys chain (a key commits to its parent),
    a plan's chain diverges from the already-walked set at exactly one
    depth, so each later plan contributes exactly one resume at its
    deepest shared key.  The counts let the tree evict each checkpoint
    after its final consumer.
    """
    needed: dict[str, int] = {}
    walked: set[str] = set(plans[0].stage_keys) if plans else set()
    for plan in plans[1:]:
        deepest = None
        for key in plan.stage_keys:
            if key not in walked:
                break  # chained keys: once diverged, stays diverged
            deepest = key
        if deepest is not None:
            needed[deepest] = needed.get(deepest, 0) + 1
        walked.update(plan.stage_keys)
    return needed
