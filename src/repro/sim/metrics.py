"""Per-event metric collection.

The paper's two performance metrics (section 5): the maximum color index
assigned in the network, and the total number of recodings.  We
additionally track protocol messages (an extension metric used by the
distributed-overhead bench).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.strategies.base import RecodeResult
from repro.types import NodeId

__all__ = ["EventRecord", "MetricsCollector", "MetricsSnapshot"]


@dataclass(frozen=True)
class EventRecord:
    """One applied event's metrics."""

    kind: str
    node: NodeId
    recodings: int
    messages: int
    max_color_after: int


@dataclass(frozen=True)
class MetricsSnapshot:
    """Cumulative totals at a point in time; use ``delta`` for phases."""

    events: int
    total_recodings: int
    total_messages: int
    max_color: int

    def delta(self, later: "MetricsSnapshot") -> "MetricsSnapshot":
        """Change from this snapshot to ``later`` (the paper's Δ metrics).

        ``max_color`` in the result is the signed difference of max color
        indices; the other fields are counts accumulated in between.
        """
        return MetricsSnapshot(
            events=later.events - self.events,
            total_recodings=later.total_recodings - self.total_recodings,
            total_messages=later.total_messages - self.total_messages,
            max_color=later.max_color - self.max_color,
        )


class MetricsCollector:
    """Accumulates :class:`EventRecord` entries for a network's lifetime."""

    def __init__(self) -> None:
        self.records: list[EventRecord] = []
        self._total_recodings = 0
        self._total_messages = 0
        self._max_color = 0

    def record(self, result: RecodeResult, max_color_after: int) -> None:
        """Record the outcome of one applied event."""
        self.records.append(
            EventRecord(
                kind=result.event_kind,
                node=result.node,
                recodings=result.recode_count,
                messages=result.messages,
                max_color_after=max_color_after,
            )
        )
        self._total_recodings += result.recode_count
        self._total_messages += result.messages
        self._max_color = max_color_after

    @property
    def total_recodings(self) -> int:
        """Total recodings across all recorded events."""
        return self._total_recodings

    @property
    def total_messages(self) -> int:
        """Total protocol messages across all recorded events."""
        return self._total_messages

    @property
    def max_color(self) -> int:
        """Max color index after the most recent event (0 if none)."""
        return self._max_color

    @classmethod
    def from_records(cls, records: "list[EventRecord]") -> "MetricsCollector":
        """Rebuild a collector from a recorded history.

        The deserialization half of checkpoint restores: totals are
        re-accumulated from the records, so a restored collector is
        indistinguishable from one that recorded the events live.
        """
        fresh = cls()
        fresh.records = list(records)
        for r in fresh.records:
            fresh._total_recodings += r.recodings
            fresh._total_messages += r.messages
        if fresh.records:
            fresh._max_color = fresh.records[-1].max_color_after
        return fresh

    def clone(self) -> "MetricsCollector":
        """An independent copy (records list and totals).

        Used by warm-start forks: the fork keeps accumulating on its own
        collector while the base network's history stays frozen.
        ``EventRecord`` entries are immutable, so a shallow list copy is
        a full decouple.
        """
        fresh = MetricsCollector()
        fresh.records = list(self.records)
        fresh._total_recodings = self._total_recodings
        fresh._total_messages = self._total_messages
        fresh._max_color = self._max_color
        return fresh

    def snapshot(self) -> MetricsSnapshot:
        """Immutable view of the current totals."""
        return MetricsSnapshot(
            events=len(self.records),
            total_recodings=self._total_recodings,
            total_messages=self._total_messages,
            max_color=self._max_color,
        )

    def counts_by_kind(self) -> dict[str, int]:
        """Number of events recorded per kind."""
        out: dict[str, int] = {}
        for r in self.records:
            out[r.kind] = out.get(r.kind, 0) + 1
        return out
