"""Application-level disruption accounting.

The paper's motivation (section 1): "minimal recoding can be very
important in reducing the effect of frequent code changes on the
performance and criticality of distributed applications", e.g. hard
real-time systems and high-data-rate flows, where every code change
stalls a node's traffic while the new code is agreed and retuned.

This module turns a network's event history into per-node disruption
numbers so the Minim-vs-CP comparison can be stated in application
terms (stall time, worst-disrupted node) instead of raw recode counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.network import AdHocNetwork
from repro.strategies.base import RecodeResult
from repro.types import NodeId

__all__ = ["DisruptionModel", "DisruptionReport"]


@dataclass(frozen=True)
class DisruptionReport:
    """Aggregated disruption over a sequence of recode results.

    Attributes
    ----------
    per_node:
        Recode count per node (only nodes recoded at least once).
    total_stall:
        Total stall time: ``recode_penalty`` per recode plus
        ``sync_penalty`` per event that recoded anyone (the
        "agreeing on when to change color" barrier of Fig 3 step 6).
    worst_node:
        ``(node, recodes)`` for the most-disrupted node, or ``None``.
    events:
        Number of results analyzed.
    """

    per_node: dict[NodeId, int]
    total_stall: float
    worst_node: tuple[NodeId, int] | None
    events: int

    @property
    def disrupted_nodes(self) -> int:
        """Number of distinct nodes that changed code at least once."""
        return len(self.per_node)


@dataclass(frozen=True)
class DisruptionModel:
    """Cost model mapping recodings to application stall time.

    Parameters
    ----------
    recode_penalty:
        Stall charged to each node that changes its code (retune +
        resynchronize its receivers), in arbitrary time units.
    sync_penalty:
        Fixed per-event barrier cost paid once whenever an event recodes
        at least one node.
    """

    recode_penalty: float = 1.0
    sync_penalty: float = 0.25

    def analyze(self, results: list[RecodeResult]) -> DisruptionReport:
        """Aggregate disruption over ``results``."""
        per_node: dict[NodeId, int] = {}
        stall = 0.0
        for r in results:
            if r.changes:
                stall += self.sync_penalty
            for node in r.changes:
                per_node[node] = per_node.get(node, 0) + 1
                stall += self.recode_penalty
        worst = max(per_node.items(), key=lambda kv: (kv[1], -kv[0]), default=None)
        return DisruptionReport(
            per_node=per_node,
            total_stall=stall,
            worst_node=worst,
            events=len(results),
        )

    def analyze_network(self, network: AdHocNetwork) -> DisruptionReport:
        """Aggregate disruption over a network's recorded history.

        Works from the metrics records (kind + recode counts), so the
        per-node breakdown is unavailable; use :meth:`analyze` with the
        retained :class:`RecodeResult` list for per-node numbers.  Here
        every record contributes its recodings to the stall total only.
        """
        stall = 0.0
        for rec in network.metrics.records:
            if rec.recodings:
                stall += self.sync_penalty + self.recode_penalty * rec.recodings
        return DisruptionReport(
            per_node={},
            total_stall=stall,
            worst_node=None,
            events=len(network.metrics.records),
        )
