"""Declarative scenario engine: placement × mobility × churn × power.

The paper's evaluation replays five fixed sweeps.  This module opens the
workload space explored by the follow-on literature — clustered
deployments (Liu et al., *Optimal Discrete Power Control in
Poisson-Clustered Ad Hoc Networks*) and cross-layer dynamics (Comaniciu
& Poor, *Energy Efficient Hierarchical Cross-Layer Design*) — behind a
single declarative :class:`ScenarioSpec`:

* **placement** — how node positions are drawn (uniform, Thomas-process
  Poisson clusters, hotspot);
* **mobility** — post-join movement (random waypoint, uniform jumps);
* **churn** — leave/rejoin cycles with uniform or hotspot re-placement;
* **power** — a raisefactor schedule over a random node fraction;
* **strategies** and a **sweep axis** with its values.

Specs are frozen dataclasses, picklable, and registered by name in
:mod:`repro.sim.registry`; :func:`run_scenario` is the experiment driver
(same shape as the ``run_*_experiment`` functions, fanning runs out via
:func:`repro.sim.runner.parallel_map`), and ``minim-cdma scenario``
exposes the catalog on the command line.
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import ConfigurationError
from repro.events.base import Event, JoinEvent, LeaveEvent
from repro.sim.experiments import (
    _ABS_METRICS,
    DEFAULT_STRATEGIES,
    _series_from,
    make_strategy,
)
from repro.sim.mobility import RandomWaypointModel
from repro.sim.network import AdHocNetwork
from repro.sim.random_networks import (
    DEFAULT_AREA,
    DEFAULT_MAX_RANGE,
    DEFAULT_MIN_RANGE,
    sample_configs,
)
from repro.sim.registry import get_scenario, register_scenario
from repro.sim.runner import parallel_map, resolve_runs
from repro.sim.workloads import movement_rounds, power_raise_workload
from repro.topology.node import NodeConfig

__all__ = [
    "BUILTIN_SCENARIOS",
    "ChurnSpec",
    "MobilitySpec",
    "PlacementSpec",
    "PowerSpec",
    "ScenarioSpec",
    "place_nodes",
    "resolve_sweep",
    "run_scenario",
    "scenario_trace",
]

_DEFAULT_RUNS = 5
_DEFAULT_SEED = 2001


# ----------------------------------------------------------------------
# Spec dataclasses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlacementSpec:
    """How initial node positions are drawn.

    ``kind``: ``"uniform"`` (the paper's generator),
    ``"poisson-cluster"`` (Thomas process: Poisson-many uniform parents,
    Gaussian scatter of ``cluster_sigma`` around a parent chosen per
    node), or ``"hotspot"`` (``hotspot_fraction`` of nodes inside a
    central disc of ``hotspot_radius``, the rest uniform).
    """

    kind: str = "uniform"
    cluster_rate: float = 4.0
    cluster_sigma: float = 8.0
    hotspot_fraction: float = 0.7
    hotspot_radius: float = 20.0

    _KINDS = ("uniform", "poisson-cluster", "hotspot")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ConfigurationError(f"placement kind must be one of {self._KINDS}")
        if not (0.0 <= self.hotspot_fraction <= 1.0):
            raise ConfigurationError(
                f"hotspot_fraction must be in [0, 1], got {self.hotspot_fraction}"
            )
        if self.cluster_rate <= 0 or self.cluster_sigma <= 0:
            raise ConfigurationError("cluster_rate and cluster_sigma must be positive")


@dataclass(frozen=True)
class MobilitySpec:
    """Post-join movement: ``"none"``, ``"waypoint"`` or ``"jumps"``.

    ``"waypoint"`` runs :class:`~repro.sim.mobility.RandomWaypointModel`
    for ``steps`` rounds with per-leg speeds in
    ``[speed_min, speed_max]``; ``"jumps"`` replays the paper's uniform
    random jumps (``maxdisp``) for ``steps`` rounds.
    """

    kind: str = "none"
    steps: int = 0
    speed_min: float = 1.0
    speed_max: float = 5.0
    pause_steps: int = 0
    maxdisp: float = 40.0

    _KINDS = ("none", "waypoint", "jumps")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ConfigurationError(f"mobility kind must be one of {self._KINDS}")
        if self.steps < 0:
            raise ConfigurationError(f"mobility steps must be >= 0, got {self.steps}")


@dataclass(frozen=True)
class ChurnSpec:
    """Leave/rejoin cycles: ``"none"``, ``"uniform"`` or ``"hotspot"``.

    Each of ``cycles`` rounds picks ``fraction`` of the nodes to leave
    and rejoin; ``"uniform"`` re-places them uniformly over the arena,
    ``"hotspot"`` inside a central disc of ``hotspot_radius`` (crowd
    convergence).
    """

    kind: str = "none"
    cycles: int = 0
    fraction: float = 0.2
    hotspot_radius: float = 25.0

    _KINDS = ("none", "uniform", "hotspot")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ConfigurationError(f"churn kind must be one of {self._KINDS}")
        if not (0.0 <= self.fraction <= 1.0):
            raise ConfigurationError(f"churn fraction must be in [0, 1], got {self.fraction}")


@dataclass(frozen=True)
class PowerSpec:
    """Power schedule: ``"none"`` or ``"raise"``.

    ``"raise"`` multiplies the ranges of a random ``fraction`` of nodes
    by ``raisefactor`` (the paper's experiment 5.2 perturbation).
    """

    kind: str = "none"
    raisefactor: float = 2.0
    fraction: float = 0.5

    _KINDS = ("none", "raise")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ConfigurationError(f"power kind must be one of {self._KINDS}")


@dataclass(frozen=True)
class ScenarioSpec:
    """A fully declarative simulation scenario.

    The event trace of one run is: sequential joins of the placed nodes,
    then mobility rounds, then churn cycles, then the power schedule.
    ``sweep_axis`` names the spec field the x-axis varies
    (``n`` / ``avg_range`` / ``steps`` / ``maxdisp`` / ``fraction`` /
    ``cycles`` / ``raisefactor``) over ``sweep_values``.
    """

    name: str
    description: str
    n: int = 100
    min_range: float = DEFAULT_MIN_RANGE
    max_range: float = DEFAULT_MAX_RANGE
    area: tuple[float, float] = DEFAULT_AREA
    placement: PlacementSpec = field(default_factory=PlacementSpec)
    mobility: MobilitySpec = field(default_factory=MobilitySpec)
    churn: ChurnSpec = field(default_factory=ChurnSpec)
    power: PowerSpec = field(default_factory=PowerSpec)
    strategies: tuple[str, ...] = DEFAULT_STRATEGIES
    sweep_axis: str = "n"
    sweep_values: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario name must be non-empty")
        if self.n < 1:
            raise ConfigurationError(f"n must be >= 1, got {self.n}")
        if not (0 < self.min_range <= self.max_range):
            raise ConfigurationError(
                f"need 0 < min_range <= max_range, got ({self.min_range}, {self.max_range})"
            )
        if self.sweep_axis not in _SWEEP_AXES:
            raise ConfigurationError(
                f"sweep_axis must be one of {tuple(_SWEEP_AXES)}, got {self.sweep_axis!r}"
            )
        if not self.strategies:
            raise ConfigurationError("scenario needs at least one strategy")


# ----------------------------------------------------------------------
# Sweep resolution
# ----------------------------------------------------------------------
def _sweep_n(spec: ScenarioSpec, v: float) -> ScenarioSpec:
    return replace(spec, n=int(v))


def _sweep_avg_range(spec: ScenarioSpec, v: float) -> ScenarioSpec:
    spread = spec.max_range - spec.min_range
    return replace(spec, min_range=v - spread / 2.0, max_range=v + spread / 2.0)


def _sweep_steps(spec: ScenarioSpec, v: float) -> ScenarioSpec:
    return replace(spec, mobility=replace(spec.mobility, steps=int(v)))


def _sweep_maxdisp(spec: ScenarioSpec, v: float) -> ScenarioSpec:
    return replace(spec, mobility=replace(spec.mobility, maxdisp=float(v)))


def _sweep_fraction(spec: ScenarioSpec, v: float) -> ScenarioSpec:
    return replace(spec, churn=replace(spec.churn, fraction=float(v)))


def _sweep_cycles(spec: ScenarioSpec, v: float) -> ScenarioSpec:
    return replace(spec, churn=replace(spec.churn, cycles=int(v)))


def _sweep_raisefactor(spec: ScenarioSpec, v: float) -> ScenarioSpec:
    return replace(spec, power=replace(spec.power, raisefactor=float(v)))


_SWEEP_AXES = {
    "n": _sweep_n,
    "avg_range": _sweep_avg_range,
    "steps": _sweep_steps,
    "maxdisp": _sweep_maxdisp,
    "fraction": _sweep_fraction,
    "cycles": _sweep_cycles,
    "raisefactor": _sweep_raisefactor,
}


def resolve_sweep(spec: ScenarioSpec, value: float) -> ScenarioSpec:
    """``spec`` with its sweep axis pinned to ``value``."""
    return _SWEEP_AXES[spec.sweep_axis](spec, value)


# ----------------------------------------------------------------------
# Placement
# ----------------------------------------------------------------------
def _hotspot_points(
    count: int, area: tuple[float, float], radius: float, rng: np.random.Generator
) -> np.ndarray:
    """Uniform samples from the central disc, clipped to the arena."""
    theta = rng.uniform(0.0, 2.0 * np.pi, size=count)
    r = radius * np.sqrt(rng.uniform(0.0, 1.0, size=count))
    cx, cy = area[0] / 2.0, area[1] / 2.0
    xs = np.clip(cx + r * np.cos(theta), 0.0, area[0])
    ys = np.clip(cy + r * np.sin(theta), 0.0, area[1])
    return np.stack([xs, ys], axis=1)


def place_nodes(spec: ScenarioSpec, rng: np.random.Generator) -> list[NodeConfig]:
    """Sample ``spec.n`` node configurations per the placement model.

    Ids are ``1..n``; ranges are uniform in ``[min_range, max_range]``
    for every placement kind (only the position law varies).
    """
    p = spec.placement
    n = spec.n
    width, height = spec.area
    if p.kind == "uniform":
        return sample_configs(
            n, rng, area=spec.area, min_range=spec.min_range, max_range=spec.max_range
        )
    if p.kind == "poisson-cluster":
        # Thomas process, conditioned on n points total: Poisson-many
        # uniform parents, each node scattered (Gaussian) around a
        # uniformly chosen parent.
        parents = max(1, int(rng.poisson(p.cluster_rate)))
        px = rng.uniform(0.0, width, size=parents)
        py = rng.uniform(0.0, height, size=parents)
        which = rng.integers(0, parents, size=n)
        xs = np.clip(px[which] + rng.normal(0.0, p.cluster_sigma, size=n), 0.0, width)
        ys = np.clip(py[which] + rng.normal(0.0, p.cluster_sigma, size=n), 0.0, height)
    else:  # hotspot
        k = int(round(n * p.hotspot_fraction))
        hot = _hotspot_points(k, spec.area, p.hotspot_radius, rng)
        xs = np.concatenate([hot[:, 0], rng.uniform(0.0, width, size=n - k)])
        ys = np.concatenate([hot[:, 1], rng.uniform(0.0, height, size=n - k)])
    ranges = rng.uniform(spec.min_range, spec.max_range, size=n)
    return [
        NodeConfig(i + 1, float(xs[i]), float(ys[i]), float(ranges[i])) for i in range(n)
    ]


# ----------------------------------------------------------------------
# Event-trace construction
# ----------------------------------------------------------------------
def _mobility_events(
    spec: ScenarioSpec, configs: list[NodeConfig], rng: np.random.Generator
) -> list[Event]:
    m = spec.mobility
    if m.kind == "none" or m.steps == 0:
        return []
    if m.kind == "jumps":
        rounds = movement_rounds(configs, m.steps, m.maxdisp, rng, area=spec.area)
        return [ev for round_events in rounds for ev in round_events]
    model = RandomWaypointModel(
        configs,
        rng,
        speed_range=(m.speed_min, m.speed_max),
        pause_steps=m.pause_steps,
        area=spec.area,
    )
    return [ev for round_events in model.run(m.steps) for ev in round_events]


def _churn_events(
    spec: ScenarioSpec, configs: list[NodeConfig], rng: np.random.Generator
) -> list[Event]:
    c = spec.churn
    if c.kind == "none" or c.cycles == 0:
        return []
    events: list[Event] = []
    by_id = {cfg.node_id: cfg for cfg in configs}
    k = int(round(len(configs) * c.fraction))
    for _ in range(c.cycles):
        chosen = rng.choice(len(configs), size=k, replace=False)
        leavers = [configs[int(i)].node_id for i in chosen]
        events.extend(LeaveEvent(v) for v in leavers)
        if c.kind == "hotspot":
            pts = _hotspot_points(k, spec.area, c.hotspot_radius, rng)
        else:
            pts = np.stack(
                [
                    rng.uniform(0.0, spec.area[0], size=k),
                    rng.uniform(0.0, spec.area[1], size=k),
                ],
                axis=1,
            )
        for j, v in enumerate(leavers):
            cfg = by_id[v]
            events.append(JoinEvent(cfg.moved_to(float(pts[j, 0]), float(pts[j, 1]))))
    return events


def scenario_trace(
    spec: ScenarioSpec, rng: np.random.Generator
) -> tuple[list[NodeConfig], list[Event]]:
    """One run's ``(configs, events)`` for an already-resolved spec.

    The trace is: sequential joins, mobility rounds, churn cycles, power
    schedule — deterministic given ``rng``'s state, so every strategy
    replays a byte-identical event sequence.
    """
    configs = place_nodes(spec, rng)
    events: list[Event] = [JoinEvent(cfg) for cfg in configs]
    events.extend(_mobility_events(spec, configs, rng))
    events.extend(_churn_events(spec, configs, rng))
    if spec.power.kind == "raise":
        events.extend(
            power_raise_workload(
                configs, spec.power.raisefactor, rng, fraction=spec.power.fraction
            )
        )
    return configs, events


# ----------------------------------------------------------------------
# Experiment driver
# ----------------------------------------------------------------------
def _scenario_task(args: tuple) -> list[tuple[float, float, float]]:
    spec, value, seed = args
    resolved = resolve_sweep(spec, value)
    _, events = scenario_trace(resolved, np.random.default_rng(seed))
    out = []
    for name in resolved.strategies:
        net = AdHocNetwork(make_strategy(name))
        for ev in events:
            net.apply(ev)
        out.append(
            (
                float(net.max_color()),
                float(net.metrics.total_recodings),
                float(net.metrics.total_messages),
            )
        )
    return out


def run_scenario(
    scenario: ScenarioSpec | str,
    *,
    runs: int | None = None,
    seed: int = _DEFAULT_SEED,
    strategies: Sequence[str] | None = None,
    processes: int | None = None,
):
    """Run a scenario sweep and return its ``ExperimentSeries``.

    ``scenario`` is a spec or a registered name.  Each sweep value is
    averaged over ``runs`` independent random traces (``REPRO_RUNS``
    overrides the default of 5), fanned out with ``parallel_map`` like
    every other experiment driver.
    """
    spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
    if strategies is not None:
        spec = replace(spec, strategies=tuple(strategies))
    if not spec.sweep_values:
        raise ConfigurationError(f"scenario {spec.name!r} has no sweep values")
    runs = resolve_runs(runs, _DEFAULT_RUNS, os.environ.get("REPRO_RUNS"))
    point_seeds = np.random.SeedSequence(seed).spawn(len(spec.sweep_values))
    tasks = [
        (spec, value, run_seed)
        for i, value in enumerate(spec.sweep_values)
        for run_seed in point_seeds[i].spawn(runs)
    ]
    raw = parallel_map(_scenario_task, tasks, processes=processes)
    data = np.asarray(raw, dtype=np.float64).reshape(
        len(spec.sweep_values), runs, len(spec.strategies), len(_ABS_METRICS)
    )
    return _series_from(
        f"scenario-{spec.name}",
        spec.sweep_axis,
        list(spec.sweep_values),
        data,
        spec.strategies,
        _ABS_METRICS,
        runs,
    )


# ----------------------------------------------------------------------
# Built-in catalog
# ----------------------------------------------------------------------
#: The registered built-in scenarios (the paper's join sweep plus six
#: workloads the paper cannot express).
BUILTIN_SCENARIOS: tuple[ScenarioSpec, ...] = tuple(
    register_scenario(spec)
    for spec in (
        ScenarioSpec(
            name="paper-join",
            description="The paper's Fig 10(a-c) sweep: uniform placement, sequential joins.",
            sweep_axis="n",
            sweep_values=(40, 60, 80, 100, 120),
        ),
        ScenarioSpec(
            name="poisson-cluster",
            description="Thomas-process clustered placement (Poisson parents, Gaussian scatter).",
            placement=PlacementSpec(kind="poisson-cluster", cluster_rate=5.0, cluster_sigma=8.0),
            sweep_axis="n",
            sweep_values=(40, 80, 120),
        ),
        ScenarioSpec(
            name="random-waypoint",
            description="Random-waypoint mobility rounds after a uniform join phase.",
            n=40,
            mobility=MobilitySpec(kind="waypoint", steps=4, speed_min=2.0, speed_max=8.0),
            sweep_axis="steps",
            sweep_values=(2, 4, 8),
        ),
        ScenarioSpec(
            name="uniform-churn",
            description="Leave/rejoin cycles with uniform re-placement over the arena.",
            n=60,
            churn=ChurnSpec(kind="uniform", cycles=2, fraction=0.2),
            sweep_axis="fraction",
            sweep_values=(0.1, 0.2, 0.4),
        ),
        ScenarioSpec(
            name="hotspot-churn",
            description="Leave/rejoin cycles converging into a central hotspot disc.",
            n=60,
            churn=ChurnSpec(kind="hotspot", cycles=2, fraction=0.2, hotspot_radius=20.0),
            sweep_axis="fraction",
            sweep_values=(0.1, 0.2, 0.4),
        ),
        ScenarioSpec(
            name="dense-urban",
            description="Dense short-range deployment: many nodes, ranges 8-12 units.",
            min_range=8.0,
            max_range=12.0,
            sweep_axis="n",
            sweep_values=(80, 120, 160),
        ),
        ScenarioSpec(
            name="sparse-long-range",
            description="Sparse long-range deployment: few nodes, ranges 45-60 units.",
            min_range=45.0,
            max_range=60.0,
            sweep_axis="n",
            sweep_values=(16, 24, 32),
        ),
    )
)
