"""Declarative scenario engine: placement × mobility × churn × power.

The paper's evaluation replays five fixed sweeps.  This module opens the
workload space explored by the follow-on literature — clustered
deployments (Liu et al., *Optimal Discrete Power Control in
Poisson-Clustered Ad Hoc Networks*) and cross-layer dynamics (Comaniciu
& Poor, *Energy Efficient Hierarchical Cross-Layer Design*) — behind a
single declarative :class:`ScenarioSpec`:

* **placement** — how node positions are drawn (uniform, Thomas-process
  Poisson clusters, hotspot);
* **mobility** — post-join movement (random waypoint, uniform jumps);
* **churn** — leave/rejoin cycles with uniform or hotspot re-placement;
* **power** — a raisefactor schedule over a random node fraction;
* **strategies**, a **sweep axis** with its values, and a **measure**
  (end-state metrics, deltas from the post-join baseline, or per-round
  cumulative deltas).

Specs are frozen dataclasses, picklable, and registered by name in
:mod:`repro.sim.registry`.  A spec's one-run workload is produced by
:func:`scenario_phases` as a *phased* trace — the baseline join phase
followed by perturbation rounds — which is what the unified sweep
orchestrator (:func:`repro.sim.sweep.run_sweep`) replays single-pass
against every strategy.  The paper's five figure sweeps are themselves
registered scenarios (``fig10-join`` … ``fig12-move-rounds``), so every
experiment — paper figures and the extended catalog alike — runs
through the same pipeline.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import ConfigurationError
from repro.events.base import Event, JoinEvent, LeaveEvent
from repro.sim.mobility import RandomWaypointModel
from repro.sim.random_networks import (
    DEFAULT_AREA,
    DEFAULT_MAX_RANGE,
    DEFAULT_MIN_RANGE,
    sample_configs,
)
from repro.sim.registry import register_scenario
from repro.sim.workloads import movement_rounds, power_raise_workload
from repro.strategies import DEFAULT_STRATEGIES
from repro.topology.node import NodeConfig

__all__ = [
    "BUILTIN_SCENARIOS",
    "ChurnSpec",
    "MobilitySpec",
    "PlacementSpec",
    "PowerSpec",
    "ScenarioSpec",
    "TracePhases",
    "place_nodes",
    "resolve_sweep",
    "run_scenario",
    "scenario_from_dict",
    "scenario_phases",
    "scenario_plan",
    "scenario_trace",
]

_DEFAULT_SEED = 2001

#: Valid ``ScenarioSpec.measure`` values.
MEASURES = ("absolute", "delta", "delta_rounds")


# ----------------------------------------------------------------------
# Spec dataclasses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlacementSpec:
    """How initial node positions are drawn.

    ``kind``: ``"uniform"`` (the paper's generator),
    ``"poisson-cluster"`` (Thomas process: Poisson-many uniform parents,
    Gaussian scatter of ``cluster_sigma`` around a parent chosen per
    node), or ``"hotspot"`` (``hotspot_fraction`` of nodes inside a
    central disc of ``hotspot_radius``, the rest uniform).
    """

    kind: str = "uniform"
    cluster_rate: float = 4.0
    cluster_sigma: float = 8.0
    hotspot_fraction: float = 0.7
    hotspot_radius: float = 20.0

    _KINDS = ("uniform", "poisson-cluster", "hotspot")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ConfigurationError(f"placement kind must be one of {self._KINDS}")
        if not (0.0 <= self.hotspot_fraction <= 1.0):
            raise ConfigurationError(
                f"hotspot_fraction must be in [0, 1], got {self.hotspot_fraction}"
            )
        if self.cluster_rate <= 0 or self.cluster_sigma <= 0:
            raise ConfigurationError("cluster_rate and cluster_sigma must be positive")


@dataclass(frozen=True)
class MobilitySpec:
    """Post-join movement: ``"none"``, ``"waypoint"`` or ``"jumps"``.

    ``"waypoint"`` runs :class:`~repro.sim.mobility.RandomWaypointModel`
    for ``steps`` rounds with per-leg speeds in
    ``[speed_min, speed_max]``; ``"jumps"`` replays the paper's uniform
    random jumps (``maxdisp``) for ``steps`` rounds.
    """

    kind: str = "none"
    steps: int = 0
    speed_min: float = 1.0
    speed_max: float = 5.0
    pause_steps: int = 0
    maxdisp: float = 40.0

    _KINDS = ("none", "waypoint", "jumps")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ConfigurationError(f"mobility kind must be one of {self._KINDS}")
        if self.steps < 0:
            raise ConfigurationError(f"mobility steps must be >= 0, got {self.steps}")


@dataclass(frozen=True)
class ChurnSpec:
    """Leave/rejoin cycles: ``"none"``, ``"uniform"`` or ``"hotspot"``.

    Each of ``cycles`` rounds picks ``fraction`` of the nodes to leave
    and rejoin; ``"uniform"`` re-places them uniformly over the arena,
    ``"hotspot"`` inside a central disc of ``hotspot_radius`` (crowd
    convergence).
    """

    kind: str = "none"
    cycles: int = 0
    fraction: float = 0.2
    hotspot_radius: float = 25.0

    _KINDS = ("none", "uniform", "hotspot")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ConfigurationError(f"churn kind must be one of {self._KINDS}")
        if not (0.0 <= self.fraction <= 1.0):
            raise ConfigurationError(f"churn fraction must be in [0, 1], got {self.fraction}")


@dataclass(frozen=True)
class PowerSpec:
    """Power schedule: ``"none"`` or ``"raise"``.

    ``"raise"`` multiplies the ranges of a random ``fraction`` of nodes
    by ``raisefactor`` (the paper's experiment 5.2 perturbation).
    """

    kind: str = "none"
    raisefactor: float = 2.0
    fraction: float = 0.5

    _KINDS = ("none", "raise")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ConfigurationError(f"power kind must be one of {self._KINDS}")


@dataclass(frozen=True)
class ScenarioSpec:
    """A fully declarative simulation scenario.

    The event trace of one run is: sequential joins of the placed nodes
    (the *baseline* phase), then mobility rounds, churn cycles and the
    power schedule (the *perturbation* rounds).  ``sweep_axis`` names
    the spec field the x-axis varies (``n`` / ``avg_range`` / ``steps``
    / ``maxdisp`` / ``fraction`` / ``cycles`` / ``raisefactor``) over
    ``sweep_values``.

    ``measure`` selects what each data point reports:

    * ``"absolute"`` — end-state totals (max color / recodings /
      messages), the Fig 10 style;
    * ``"delta"`` — change from the post-baseline snapshot to the end
      of the trace (Fig 11 / Fig 12(a) style);
    * ``"delta_rounds"`` — cumulative deltas sampled after *each*
      perturbation round of a single trace (Fig 12(b-d) style); the
      sweep must then have exactly one value and the series x-axis is
      the round number.

    ``paired_runs`` reuses the same per-run seeds across sweep values,
    so each sweep point perturbs the same base networks (the paper does
    this for the raisefactor and maxdisp sweeps).  ``experiment_id``
    overrides the series id (default ``scenario-<name>``) and
    ``x_label`` the series x-axis label (default the sweep axis).
    """

    name: str
    description: str
    n: int = 100
    min_range: float = DEFAULT_MIN_RANGE
    max_range: float = DEFAULT_MAX_RANGE
    area: tuple[float, float] = DEFAULT_AREA
    placement: PlacementSpec = field(default_factory=PlacementSpec)
    mobility: MobilitySpec = field(default_factory=MobilitySpec)
    churn: ChurnSpec = field(default_factory=ChurnSpec)
    power: PowerSpec = field(default_factory=PowerSpec)
    strategies: tuple[str, ...] = DEFAULT_STRATEGIES
    sweep_axis: str = "n"
    sweep_values: tuple[float, ...] = ()
    measure: str = "absolute"
    paired_runs: bool = False
    experiment_id: str = ""
    x_label: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario name must be non-empty")
        if self.n < 1:
            raise ConfigurationError(f"n must be >= 1, got {self.n}")
        if not (0 < self.min_range <= self.max_range):
            raise ConfigurationError(
                f"need 0 < min_range <= max_range, got ({self.min_range}, {self.max_range})"
            )
        if self.sweep_axis not in _SWEEP_AXES:
            raise ConfigurationError(
                f"sweep_axis must be one of {tuple(_SWEEP_AXES)}, got {self.sweep_axis!r}"
            )
        if self.measure not in MEASURES:
            raise ConfigurationError(f"measure must be one of {MEASURES}, got {self.measure!r}")
        if not self.strategies:
            raise ConfigurationError("scenario needs at least one strategy")

    @property
    def series_id(self) -> str:
        """The experiment id its series carry (``scenario-<name>`` default)."""
        return self.experiment_id or f"scenario-{self.name}"

    @property
    def series_x_label(self) -> str:
        """The series x-axis label (sweep axis or round counter)."""
        if self.x_label:
            return self.x_label
        return "round" if self.measure == "delta_rounds" else self.sweep_axis


# ----------------------------------------------------------------------
# Sweep resolution
# ----------------------------------------------------------------------
def _sweep_n(spec: ScenarioSpec, v: float) -> ScenarioSpec:
    return replace(spec, n=int(v))


def _sweep_avg_range(spec: ScenarioSpec, v: float) -> ScenarioSpec:
    spread = spec.max_range - spec.min_range
    return replace(spec, min_range=v - spread / 2.0, max_range=v + spread / 2.0)


def _sweep_steps(spec: ScenarioSpec, v: float) -> ScenarioSpec:
    return replace(spec, mobility=replace(spec.mobility, steps=int(v)))


def _sweep_maxdisp(spec: ScenarioSpec, v: float) -> ScenarioSpec:
    return replace(spec, mobility=replace(spec.mobility, maxdisp=float(v)))


def _sweep_fraction(spec: ScenarioSpec, v: float) -> ScenarioSpec:
    return replace(spec, churn=replace(spec.churn, fraction=float(v)))


def _sweep_cycles(spec: ScenarioSpec, v: float) -> ScenarioSpec:
    return replace(spec, churn=replace(spec.churn, cycles=int(v)))


def _sweep_raisefactor(spec: ScenarioSpec, v: float) -> ScenarioSpec:
    return replace(spec, power=replace(spec.power, raisefactor=float(v)))


_SWEEP_AXES = {
    "n": _sweep_n,
    "avg_range": _sweep_avg_range,
    "steps": _sweep_steps,
    "maxdisp": _sweep_maxdisp,
    "fraction": _sweep_fraction,
    "cycles": _sweep_cycles,
    "raisefactor": _sweep_raisefactor,
}


def resolve_sweep(spec: ScenarioSpec, value: float) -> ScenarioSpec:
    """``spec`` with its sweep axis pinned to ``value``."""
    return _SWEEP_AXES[spec.sweep_axis](spec, value)


def scenario_from_dict(data: dict) -> ScenarioSpec:
    """Rebuild a :class:`ScenarioSpec` from ``dataclasses.asdict`` output.

    The inverse of ``dataclasses.asdict`` for the spec tree (nested
    placement/mobility/churn/power specs, tuple-valued fields), used to
    round-trip fully resolved sweep points through the task descriptors
    of the worker executor.  Validation re-runs on construction, so a
    tampered descriptor fails loudly.
    """
    spec = dict(data)
    try:
        return ScenarioSpec(
            **{
                **spec,
                "area": tuple(spec["area"]),
                "placement": PlacementSpec(**spec["placement"]),
                "mobility": MobilitySpec(**spec["mobility"]),
                "churn": ChurnSpec(**spec["churn"]),
                "power": PowerSpec(**spec["power"]),
                "strategies": tuple(spec["strategies"]),
                "sweep_values": tuple(spec["sweep_values"]),
            }
        )
    except (KeyError, TypeError) as exc:
        raise ConfigurationError(f"malformed scenario payload: {exc}") from exc


# ----------------------------------------------------------------------
# Placement
# ----------------------------------------------------------------------
def _hotspot_points(
    count: int, area: tuple[float, float], radius: float, rng: np.random.Generator
) -> np.ndarray:
    """Uniform samples from the central disc, clipped to the arena."""
    theta = rng.uniform(0.0, 2.0 * np.pi, size=count)
    r = radius * np.sqrt(rng.uniform(0.0, 1.0, size=count))
    cx, cy = area[0] / 2.0, area[1] / 2.0
    xs = np.clip(cx + r * np.cos(theta), 0.0, area[0])
    ys = np.clip(cy + r * np.sin(theta), 0.0, area[1])
    return np.stack([xs, ys], axis=1)


def place_nodes(spec: ScenarioSpec, rng: np.random.Generator) -> list[NodeConfig]:
    """Sample ``spec.n`` node configurations per the placement model.

    Ids are ``1..n``; ranges are uniform in ``[min_range, max_range]``
    for every placement kind (only the position law varies).
    """
    p = spec.placement
    n = spec.n
    width, height = spec.area
    if p.kind == "uniform":
        return sample_configs(
            n, rng, area=spec.area, min_range=spec.min_range, max_range=spec.max_range
        )
    if p.kind == "poisson-cluster":
        # Thomas process, conditioned on n points total: Poisson-many
        # uniform parents, each node scattered (Gaussian) around a
        # uniformly chosen parent.
        parents = max(1, int(rng.poisson(p.cluster_rate)))
        px = rng.uniform(0.0, width, size=parents)
        py = rng.uniform(0.0, height, size=parents)
        which = rng.integers(0, parents, size=n)
        xs = np.clip(px[which] + rng.normal(0.0, p.cluster_sigma, size=n), 0.0, width)
        ys = np.clip(py[which] + rng.normal(0.0, p.cluster_sigma, size=n), 0.0, height)
    else:  # hotspot
        k = int(round(n * p.hotspot_fraction))
        hot = _hotspot_points(k, spec.area, p.hotspot_radius, rng)
        xs = np.concatenate([hot[:, 0], rng.uniform(0.0, width, size=n - k)])
        ys = np.concatenate([hot[:, 1], rng.uniform(0.0, height, size=n - k)])
    ranges = rng.uniform(spec.min_range, spec.max_range, size=n)
    return [
        NodeConfig(i + 1, float(xs[i]), float(ys[i]), float(ranges[i])) for i in range(n)
    ]


# ----------------------------------------------------------------------
# Event-trace construction
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TracePhases:
    """One run's workload, split into measurement phases.

    ``baseline`` is the sequential join phase every experiment starts
    from; ``rounds`` are the perturbation checkpoints that follow (one
    entry per mobility round / churn cycle, plus one for the power
    schedule).  Delta measures snapshot metrics after ``baseline``;
    ``delta_rounds`` additionally samples after every round.
    """

    configs: tuple[NodeConfig, ...]
    baseline: tuple[Event, ...]
    rounds: tuple[tuple[Event, ...], ...]

    @property
    def events(self) -> list[Event]:
        """The flat event sequence (baseline + all rounds, in order)."""
        out: list[Event] = list(self.baseline)
        for round_events in self.rounds:
            out.extend(round_events)
        return out


def _mobility_rounds(
    spec: ScenarioSpec, configs: list[NodeConfig], rng: np.random.Generator
) -> list[list[Event]]:
    m = spec.mobility
    if m.kind == "none" or m.steps == 0:
        return []
    if m.kind == "jumps":
        rounds = movement_rounds(configs, m.steps, m.maxdisp, rng, area=spec.area)
        return [list(round_events) for round_events in rounds]
    model = RandomWaypointModel(
        configs,
        rng,
        speed_range=(m.speed_min, m.speed_max),
        pause_steps=m.pause_steps,
        area=spec.area,
    )
    return [list(round_events) for round_events in model.run(m.steps)]


def _churn_rounds(
    spec: ScenarioSpec, configs: list[NodeConfig], rng: np.random.Generator
) -> list[list[Event]]:
    c = spec.churn
    if c.kind == "none" or c.cycles == 0:
        return []
    rounds: list[list[Event]] = []
    by_id = {cfg.node_id: cfg for cfg in configs}
    k = int(round(len(configs) * c.fraction))
    for _ in range(c.cycles):
        cycle: list[Event] = []
        chosen = rng.choice(len(configs), size=k, replace=False)
        leavers = [configs[int(i)].node_id for i in chosen]
        cycle.extend(LeaveEvent(v) for v in leavers)
        if c.kind == "hotspot":
            pts = _hotspot_points(k, spec.area, c.hotspot_radius, rng)
        else:
            pts = np.stack(
                [
                    rng.uniform(0.0, spec.area[0], size=k),
                    rng.uniform(0.0, spec.area[1], size=k),
                ],
                axis=1,
            )
        for j, v in enumerate(leavers):
            cfg = by_id[v]
            cycle.append(JoinEvent(cfg.moved_to(float(pts[j, 0]), float(pts[j, 1]))))
        rounds.append(cycle)
    return rounds


def scenario_phases(spec: ScenarioSpec, rng: np.random.Generator) -> TracePhases:
    """One run's phased workload for an already-resolved spec.

    The trace is: sequential joins (baseline), then one round per
    mobility step, one per churn cycle, and one for the power schedule —
    deterministic given ``rng``'s state, so every strategy replays a
    byte-identical event sequence.
    """
    configs = place_nodes(spec, rng)
    baseline: list[Event] = [JoinEvent(cfg) for cfg in configs]
    rounds: list[list[Event]] = _mobility_rounds(spec, configs, rng)
    rounds.extend(_churn_rounds(spec, configs, rng))
    if spec.power.kind == "raise":
        rounds.append(
            list(
                power_raise_workload(
                    configs, spec.power.raisefactor, rng, fraction=spec.power.fraction
                )
            )
        )
    return TracePhases(
        configs=tuple(configs),
        baseline=tuple(baseline),
        rounds=tuple(tuple(r) for r in rounds),
    )


def scenario_trace(
    spec: ScenarioSpec, rng: np.random.Generator
) -> tuple[list[NodeConfig], list[Event]]:
    """One run's flat ``(configs, events)`` for an already-resolved spec.

    Convenience wrapper over :func:`scenario_phases` for consumers that
    do not care about phase boundaries (benchmarks, trace archiving).
    """
    phases = scenario_phases(spec, rng)
    return list(phases.configs), phases.events


def scenario_plan(spec: ScenarioSpec, rng: np.random.Generator):
    """One run's staged, content-keyed :class:`~repro.sim.timeline.TracePlan`.

    The checkpoint-timeline view of :func:`scenario_phases`: the same
    events, segmented into stages (placement/join, then one stage per
    perturbation round) whose chained content keys are what the
    execution layer shares across tasks.  Plans round-trip through
    :func:`repro.sim.trace.save_trace` with their keys intact.
    """
    from repro.sim.timeline import plan_from_phases

    return plan_from_phases(
        scenario_phases(spec, rng), strategies=spec.strategies, measure=spec.measure
    )


# ----------------------------------------------------------------------
# Experiment driver (delegates to the unified sweep orchestrator)
# ----------------------------------------------------------------------
def run_scenario(
    scenario: ScenarioSpec | str,
    *,
    runs: int | None = None,
    seed: int = _DEFAULT_SEED,
    strategies: Sequence[str] | None = None,
    processes: int | None = None,
    store=None,
    resume: bool = True,
    executor=None,
    warm_start: bool | None = None,
):
    """Run a scenario sweep and return its ``ExperimentSeries``.

    ``scenario`` is a spec or a registered name.  This is a thin alias
    of :func:`repro.sim.sweep.run_sweep` — every scenario, paper figure
    or extended workload, goes through the same plan → claim → execute
    → collect pipeline (and, when ``store`` is given, the same
    resumable results backend).
    """
    from repro.sim.sweep import run_sweep

    return run_sweep(
        scenario,
        runs=runs,
        seed=seed,
        strategies=strategies,
        processes=processes,
        store=store,
        resume=resume,
        executor=executor,
        warm_start=warm_start,
    )


# ----------------------------------------------------------------------
# Built-in catalog
# ----------------------------------------------------------------------
#: The registered built-in scenarios: the paper's five figure sweeps
#: plus seven workloads the paper cannot express.
BUILTIN_SCENARIOS: tuple[ScenarioSpec, ...] = tuple(
    register_scenario(spec)
    for spec in (
        # -- the paper's evaluation (section 5) as sweep specs ---------
        ScenarioSpec(
            name="fig10-join",
            description="Paper Fig 10(a-c): N nodes join one by one; final metrics vs N.",
            experiment_id="fig10-join",
            x_label="N",
            sweep_axis="n",
            sweep_values=(40, 60, 80, 100, 120),
        ),
        ScenarioSpec(
            name="fig10-range",
            description="Paper Fig 10(d-f): fixed N, sweep the average transmission range.",
            experiment_id="fig10-range",
            x_label="avgR",
            n=100,
            min_range=17.5,
            max_range=22.5,  # spread maxr - minr = 5, per the paper
            sweep_axis="avg_range",
            sweep_values=(5.0, 15.0, 25.0, 35.0, 45.0, 55.0, 65.0),
        ),
        ScenarioSpec(
            name="fig11-power",
            description="Paper Fig 11(a-c): raise a random half's ranges by raisefactor.",
            experiment_id="fig11-power",
            x_label="raisefactor",
            n=100,
            power=PowerSpec(kind="raise", fraction=0.5),
            sweep_axis="raisefactor",
            sweep_values=(1.0, 2.0, 3.0, 4.0, 5.0, 6.0),
            measure="delta",
            paired_runs=True,
        ),
        ScenarioSpec(
            name="fig12-move-disp",
            description="Paper Fig 12(a): one round of moves, sweeping the max displacement.",
            experiment_id="fig12-move-disp",
            x_label="maxdisp",
            n=40,
            mobility=MobilitySpec(kind="jumps", steps=1, maxdisp=40.0),
            sweep_axis="maxdisp",
            sweep_values=(0.0, 10.0, 20.0, 40.0, 60.0, 80.0),
            measure="delta",
            paired_runs=True,
        ),
        ScenarioSpec(
            name="fig12-move-rounds",
            description="Paper Fig 12(b-d): cumulative deltas after each movement round.",
            experiment_id="fig12-move-rounds",
            x_label="round",
            n=40,
            mobility=MobilitySpec(kind="jumps", steps=10, maxdisp=40.0),
            sweep_axis="steps",
            sweep_values=(10,),
            measure="delta_rounds",
            paired_runs=True,
        ),
        # -- extended workloads beyond the paper ------------------------
        ScenarioSpec(
            name="paper-join",
            description="The paper's Fig 10(a-c) sweep: uniform placement, sequential joins.",
            sweep_axis="n",
            sweep_values=(40, 60, 80, 100, 120),
        ),
        ScenarioSpec(
            name="poisson-cluster",
            description="Thomas-process clustered placement (Poisson parents, Gaussian scatter).",
            placement=PlacementSpec(kind="poisson-cluster", cluster_rate=5.0, cluster_sigma=8.0),
            sweep_axis="n",
            sweep_values=(40, 80, 120),
        ),
        ScenarioSpec(
            name="random-waypoint",
            description="Random-waypoint mobility rounds after a uniform join phase.",
            n=40,
            mobility=MobilitySpec(kind="waypoint", steps=4, speed_min=2.0, speed_max=8.0),
            sweep_axis="steps",
            sweep_values=(2, 4, 8),
        ),
        ScenarioSpec(
            name="uniform-churn",
            description="Leave/rejoin cycles with uniform re-placement over the arena.",
            n=60,
            churn=ChurnSpec(kind="uniform", cycles=2, fraction=0.2),
            sweep_axis="fraction",
            sweep_values=(0.1, 0.2, 0.4),
        ),
        ScenarioSpec(
            name="hotspot-churn",
            description="Leave/rejoin cycles converging into a central hotspot disc.",
            n=60,
            churn=ChurnSpec(kind="hotspot", cycles=2, fraction=0.2, hotspot_radius=20.0),
            sweep_axis="fraction",
            sweep_values=(0.1, 0.2, 0.4),
        ),
        ScenarioSpec(
            name="dense-urban",
            description="Dense short-range deployment: many nodes, ranges 8-12 units.",
            min_range=8.0,
            max_range=12.0,
            sweep_axis="n",
            sweep_values=(80, 120, 160),
        ),
        ScenarioSpec(
            name="sparse-long-range",
            description="Sparse long-range deployment: few nodes, ranges 45-60 units.",
            min_range=45.0,
            max_range=60.0,
            sweep_axis="n",
            sweep_values=(16, 24, 32),
        ),
    )
)
