"""Structured, resumable results store for experiment sweeps.

A sweep writes three kinds of artifact under one root directory:

* ``points/<key>.json`` — one artifact per (sweep point, run), keyed by
  a content hash of the fully resolved point spec plus the run's seed.
  Because keys depend only on *what was computed*, re-invoking an
  identical sweep finds every point already present and skips the
  computation (resume / caching); enlarging ``runs`` or appending sweep
  values recomputes only the missing points.
* ``sweeps/<sweep-key>.json`` — the run manifest: the spec, run count,
  seed, the point keys it covers, how many were computed vs served
  from cache on the last invocation, and an embedded copy of the
  assembled series (content-keyed, so it is never clobbered by a later
  sweep reusing the same experiment id).
* ``series/<experiment-id>.json`` — the **most recently assembled**
  :class:`~repro.analysis.series.ExperimentSeries` for that experiment
  id, reloadable by :meth:`ResultsStore.load_series` (used by the
  analysis/report layer instead of keeping results only in memory).
  This slot is latest-wins by design — re-running ``fig10-join`` with
  different runs/strategies replaces it; the per-sweep copy inside the
  manifest remains addressable by sweep key.

Layout and hashing are deliberately dependency-free (plain JSON files)
so stores can be rsynced, diffed and garbage-collected with ordinary
tools.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - type-only
    from repro.analysis.series import ExperimentSeries
    from repro.sim.scenarios import ScenarioSpec

__all__ = ["ResultsStore", "seed_token", "spec_digest"]

#: Bump when the artifact schema changes incompatibly; part of every key
#: so stale stores never satisfy a lookup from newer code.
_SCHEMA_VERSION = 1


def _canonical(obj: Any) -> str:
    """Deterministic JSON for hashing (sorted keys, no whitespace)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def spec_digest(spec: "ScenarioSpec", extra: dict | None = None) -> str:
    """Stable content hash of a scenario spec (plus optional context).

    Two specs hash equal iff every field — placement, mobility, churn,
    power, strategies, sweep configuration, measure — is equal, so a
    digest names one exact computation.
    """
    payload = {
        "schema": _SCHEMA_VERSION,
        "spec": dataclasses.asdict(spec),
        "extra": extra or {},
    }
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()[:20]


def seed_token(seed) -> str:
    """A stable string identity for a run seed.

    Accepts ints and ``numpy.random.SeedSequence`` objects (identified
    by entropy + spawn key, i.e. their reproducible derivation path —
    not by object identity).
    """
    entropy = getattr(seed, "entropy", None)
    if entropy is not None:
        spawn_key = tuple(getattr(seed, "spawn_key", ()))
        return f"ss-{entropy}-{'.'.join(map(str, spawn_key)) or 'root'}"
    return f"int-{int(seed)}"


class ResultsStore:
    """Filesystem-backed sweep results with point-level resume.

    Parameters
    ----------
    root:
        Store directory; created on first write.
    """

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    # Point artifacts
    # ------------------------------------------------------------------
    def point_key(self, point_spec: "ScenarioSpec", seed) -> str:
        """The artifact key of one (resolved point spec, run seed) pair."""
        return spec_digest(point_spec, extra={"seed": seed_token(seed)})

    def point_path(self, key: str) -> Path:
        """Where the artifact for ``key`` lives."""
        return self.root / "points" / f"{key}.json"

    def load_point(self, key: str) -> Any | None:
        """The stored result payload for ``key``, or ``None`` if absent."""
        path = self.point_path(key)
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text())["result"]
        except (json.JSONDecodeError, KeyError) as exc:
            raise ConfigurationError(f"corrupt results artifact {path}: {exc}") from exc

    def save_point(self, key: str, result: Any, *, context: dict | None = None) -> Path:
        """Persist one point result (with provenance context) atomically."""
        path = self.point_path(key)
        payload = {"schema": _SCHEMA_VERSION, "context": context or {}, "result": result}
        return self._write_json(path, payload)

    # ------------------------------------------------------------------
    # Sweep manifests
    # ------------------------------------------------------------------
    def manifest_path(self, sweep_key: str) -> Path:
        """Where the manifest for ``sweep_key`` lives."""
        return self.root / "sweeps" / f"{sweep_key}.json"

    def save_manifest(self, sweep_key: str, manifest: dict) -> Path:
        """Persist a sweep's run manifest."""
        return self._write_json(self.manifest_path(sweep_key), manifest)

    def load_manifest(self, sweep_key: str) -> dict | None:
        """The manifest for ``sweep_key``, or ``None`` if absent."""
        path = self.manifest_path(sweep_key)
        if not path.exists():
            return None
        return json.loads(path.read_text())

    # ------------------------------------------------------------------
    # Assembled series
    # ------------------------------------------------------------------
    def series_path(self, experiment_id: str) -> Path:
        """Where the assembled series for ``experiment_id`` lives."""
        return self.root / "series" / f"{experiment_id}.json"

    def save_series(self, series: "ExperimentSeries") -> Path:
        """Persist an assembled series under its experiment id."""
        return self._write_json(self.series_path(series.experiment), series.to_dict())

    def load_series(self, experiment_id: str) -> "ExperimentSeries":
        """Load a previously assembled series by experiment id."""
        from repro.analysis.series import ExperimentSeries

        path = self.series_path(experiment_id)
        if not path.exists():
            known = sorted(p.stem for p in self.root.glob("series/*.json"))
            raise ConfigurationError(
                f"no stored series {experiment_id!r} under {self.root} "
                f"(stored: {', '.join(known) or '<none>'})"
            )
        return ExperimentSeries.from_dict(json.loads(path.read_text()))

    def list_series(self) -> list[str]:
        """Experiment ids with an assembled series, ascending."""
        return sorted(p.stem for p in self.root.glob("series/*.json"))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _write_json(self, path: Path, payload: Any) -> Path:
        """Write-then-rename so readers never observe partial files."""
        from repro.analysis.series import write_json_atomic

        return write_json_atomic(path, payload)
