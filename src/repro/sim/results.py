"""Pluggable results backends for experiment sweeps.

A sweep persists four kinds of artifact through one
:class:`ResultsBackend`:

* **points** — one artifact per (sweep point, run), keyed by a content
  hash of the fully resolved point spec plus the run's seed.  Because
  keys depend only on *what was computed*, re-invoking an identical
  sweep finds every point already present and skips the computation
  (resume / caching); enlarging ``runs`` or appending sweep values
  recomputes only the missing points.
* **manifests** — one run manifest per sweep (content-keyed by the
  sweep's spec × runs × seed hash): the spec, the point keys it covers,
  the computed/cached split of the last invocation, and an embedded
  copy of the assembled series.
* **series** — the most recently assembled
  :class:`~repro.analysis.series.ExperimentSeries` per experiment id
  (latest-wins by design; the per-sweep copy inside the manifest stays
  addressable by sweep key).
* **tasks + claims** — the shared work queue of the worker executor
  (:mod:`repro.sim.executor`): pending task descriptors plus lease
  claims with a TTL, giving multiple worker processes (or hosts on a
  shared filesystem) at-least-once draining of one sweep.
* **checkpoints** — content-keyed delta-chain links of the execution
  timeline (:mod:`repro.sim.timeline`): each row is one stage
  boundary serialized as an O(changes) delta against its base link.
  Conditional puts (if-absent) make concurrent workers race-free, and
  because keys commit to the whole event prefix, any process or host
  that hits a stored key resumes the shared prefix instead of
  replaying it.  ``store ckpt <path> ls/gc`` lists and prunes the
  table; :meth:`~ResultsBackend.gc_checkpoints` keeps only links some
  live manifest's points reference.
* **churn + quarantine** — the control plane's health state: per-task
  lease-break counters (bumped whenever :meth:`~ResultsBackend.try_claim`
  breaks a stale lease) and a quarantine table holding descriptors that
  churned too often or failed to decode, so one poison task stops being
  re-claimed forever.  ``minim-cdma store stats`` surfaces both and
  ``store requeue`` releases quarantined tasks back into the queue.

Two backends implement the interface:

* :class:`JsonDirBackend` (the historical ``ResultsStore``) — plain
  JSON files under one root directory, rsyncable and diffable with
  ordinary tools.  Claims are ``O_EXCL`` lease files.
* :class:`SqliteBackend` — one stdlib-``sqlite3`` file holding every
  artifact kind as a table, for sweeps with 10⁴+ points where a
  directory of tiny JSON files stops scaling.  Claims are
  ``INSERT OR IGNORE`` rows.

:func:`open_backend` resolves a path (or locator string) to the right
backend, :func:`migrate_store` copies any backend into any other, and
:meth:`JsonDirBackend.compact` folds a JSON directory store into a
single SQLite table in place.
"""

from __future__ import annotations

import abc
import dataclasses
import hashlib
import json
import os
import sqlite3
import time
from collections.abc import Iterator, Sequence
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro import obs
from repro.errors import ConfigurationError
from repro.obs import metrics as _met

if TYPE_CHECKING:  # pragma: no cover - type-only
    from repro.analysis.series import ExperimentSeries
    from repro.sim.scenarios import ScenarioSpec

__all__ = [
    "CheckpointScope",
    "JsonDirBackend",
    "ResultsBackend",
    "ResultsStore",
    "SqliteBackend",
    "migrate_store",
    "open_backend",
    "point_key",
    "seed_token",
    "spec_digest",
]

#: Bump when the artifact schema changes incompatibly; part of every key
#: so stale stores never satisfy a lookup from newer code.
_SCHEMA_VERSION = 1

#: Default lease lifetime: a claim older than this counts as abandoned
#: (its worker died) and may be re-claimed by anyone.
DEFAULT_CLAIM_TTL = 60.0

#: The SQLite file a compacted JSON store folds into (and the marker
#: :func:`open_backend` sniffs to route a directory to SQLite).
_SQLITE_BASENAME = "store.sqlite"
_SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")


def _canonical(obj: Any) -> str:
    """Deterministic JSON for hashing (sorted keys, no whitespace)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def spec_digest(spec: "ScenarioSpec", extra: dict | None = None) -> str:
    """Stable content hash of a scenario spec (plus optional context).

    Two specs hash equal iff every field — placement, mobility, churn,
    power, strategies, sweep configuration, measure — is equal, so a
    digest names one exact computation.
    """
    payload = {
        "schema": _SCHEMA_VERSION,
        "spec": dataclasses.asdict(spec),
        "extra": extra or {},
    }
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()[:20]


def seed_token(seed) -> str:
    """A stable string identity for a run seed.

    Accepts ints and ``numpy.random.SeedSequence`` objects (identified
    by entropy + spawn key, i.e. their reproducible derivation path —
    not by object identity).
    """
    entropy = getattr(seed, "entropy", None)
    if entropy is not None:
        spawn_key = tuple(getattr(seed, "spawn_key", ()))
        return f"ss-{entropy}-{'.'.join(map(str, spawn_key)) or 'root'}"
    return f"int-{int(seed)}"


def point_key(point_spec: "ScenarioSpec", seed) -> str:
    """The artifact key of one (resolved point spec, run seed) pair."""
    return spec_digest(point_spec, extra={"seed": seed_token(seed)})


class ResultsBackend(abc.ABC):
    """Storage interface every sweep artifact flows through.

    Concrete backends implement the raw record operations; the shared
    point/series conveniences (payload wrapping, missing-series errors,
    content keys) live here so all backends behave identically.
    """

    #: String that re-opens this backend in another process via
    #: :func:`open_backend` (a directory for JSON, a file for SQLite).
    locator: str

    #: Short backend kind tag (``"json"`` / ``"sqlite"``).
    kind: str

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    def point_key(self, point_spec: "ScenarioSpec", seed) -> str:
        """The artifact key of one (resolved point spec, run seed) pair."""
        return point_key(point_spec, seed)

    # ------------------------------------------------------------------
    # Point artifacts
    # ------------------------------------------------------------------
    def load_point(self, key: str) -> Any | None:
        """The stored result payload for ``key``, or ``None`` if absent."""
        record = self.load_point_record(key)
        if _met.ENABLED:
            _met.REGISTRY.inc("store.point.hit" if record is not None else "store.point.miss")
        if record is None:
            return None
        try:
            return record["result"]
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(
                f"corrupt results artifact {self.point_locator(key)}: {exc}"
            ) from exc

    def save_point(self, key: str, result: Any, *, context: dict | None = None) -> None:
        """Persist one point result (with provenance context) atomically.

        Saves are idempotent: the key is a content hash of the
        computation, so concurrent workers racing the same point write
        identical payloads and last-write-wins is safe.
        """
        self.save_point_record(
            key, {"schema": _SCHEMA_VERSION, "context": context or {}, "result": result}
        )
        if _met.ENABLED:
            _met.REGISTRY.inc("store.point.write")

    def load_points(self, keys: "list[str]") -> dict[str, Any]:
        """``{key: result}`` for every stored key in ``keys``.

        Absent keys are omitted.  The batched cache probe of the claim
        stage and the worker drain loop; backends with a cheaper bulk
        path (SQLite) override the default per-key loop.
        """
        out: dict[str, Any] = {}
        for key in keys:
            result = self.load_point(key)
            if result is not None:
                out[key] = result
        return out

    def point_locator(self, key: str) -> str:
        """Human-readable location of one point artifact (error messages)."""
        return f"{self.locator}::points/{key}"

    @abc.abstractmethod
    def load_point_record(self, key: str) -> dict | None:
        """The full stored record for ``key`` (schema/context/result)."""

    @abc.abstractmethod
    def save_point_record(self, key: str, record: dict) -> None:
        """Persist one full point record atomically."""

    @abc.abstractmethod
    def list_points(self) -> list[str]:
        """All stored point keys, ascending (compaction / migration)."""

    # ------------------------------------------------------------------
    # Sweep manifests
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def save_manifest(self, sweep_key: str, manifest: dict) -> None:
        """Persist a sweep's run manifest."""

    @abc.abstractmethod
    def load_manifest(self, sweep_key: str) -> dict | None:
        """The manifest for ``sweep_key``, or ``None`` if absent."""

    @abc.abstractmethod
    def list_manifests(self) -> list[str]:
        """All stored sweep keys, ascending."""

    # ------------------------------------------------------------------
    # Assembled series
    # ------------------------------------------------------------------
    def save_series(self, series: "ExperimentSeries") -> None:
        """Persist an assembled series under its experiment id."""
        self.save_series_dict(series.experiment, series.to_dict())

    def load_series(self, experiment_id: str) -> "ExperimentSeries":
        """Load a previously assembled series by experiment id."""
        from repro.analysis.series import ExperimentSeries

        data = self.load_series_dict(experiment_id)
        if data is None:
            known = self.list_series()
            raise ConfigurationError(
                f"no stored series {experiment_id!r} under {self.locator} "
                f"(stored: {', '.join(known) or '<none>'})"
            )
        return ExperimentSeries.from_dict(data)

    @abc.abstractmethod
    def save_series_dict(self, experiment_id: str, data: dict) -> None:
        """Persist one assembled series as a plain dict."""

    @abc.abstractmethod
    def load_series_dict(self, experiment_id: str) -> dict | None:
        """The stored series dict for ``experiment_id``, or ``None``."""

    @abc.abstractmethod
    def list_series(self) -> list[str]:
        """Experiment ids with an assembled series, ascending."""

    # ------------------------------------------------------------------
    # Worker queue: tasks + claims
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def save_task(self, key: str, payload: dict) -> None:
        """Publish one pending task descriptor under ``key``."""

    @abc.abstractmethod
    def load_task(self, key: str) -> dict | None:
        """The pending task descriptor for ``key``, or ``None``."""

    @abc.abstractmethod
    def delete_task(self, key: str) -> None:
        """Remove a task descriptor (no-op when already gone)."""

    @abc.abstractmethod
    def pending_task_keys(self) -> list[str]:
        """Keys of all published task descriptors, ascending."""

    @abc.abstractmethod
    def try_claim(self, key: str, owner: str, *, ttl: float = DEFAULT_CLAIM_TTL) -> bool:
        """Atomically claim ``key`` for ``owner``; ``True`` on success.

        A claim older than ``ttl`` seconds counts as abandoned and is
        broken, so a worker that died mid-computation never wedges the
        queue (at-least-once semantics: the point may then be computed
        twice, which is safe because saves are idempotent).
        """

    @abc.abstractmethod
    def renew_claim(self, key: str, owner: str) -> None:
        """Refresh a held claim's timestamp (no-op when absent).

        Drain loops call this as each group member completes, so a
        lease only goes stale when its holder stops making progress for
        a whole TTL — not merely because the group is large.
        """

    @abc.abstractmethod
    def release_claim(self, key: str) -> None:
        """Release a claim (no-op when absent)."""

    @abc.abstractmethod
    def list_claims(self) -> list[str]:
        """Keys currently under claim, ascending."""

    @abc.abstractmethod
    def claim_info(self) -> dict[str, dict]:
        """``{key: {"owner": str, "age": seconds}}`` for every live claim.

        ``age`` counts from the last grant *or renewal*, i.e. it is the
        time the lease has gone without progress — the quantity the TTL
        staleness check and ``store stats`` both care about.
        """

    def claim_age(self, key: str) -> float | None:
        """Age of one key's claim in seconds, or ``None`` when unclaimed.

        The O(1) lookup the quarantine check polls per task; backends
        override the full-table default with a single stat/row read.
        """
        info = self.claim_info().get(key)
        return None if info is None else info["age"]

    # ------------------------------------------------------------------
    # Lease churn + quarantine
    # ------------------------------------------------------------------
    # A lease "break" is try_claim evicting a stale claim: the previous
    # holder stopped renewing for a whole TTL, i.e. it most likely died
    # mid-computation.  Tasks whose leases break repeatedly are poison
    # (they kill whoever claims them) and get parked in the quarantine
    # table instead of being re-claimed forever.

    @abc.abstractmethod
    def record_lease_break(self, key: str) -> int:
        """Count one broken lease for ``key``; returns the new total.

        Called by ``try_claim`` implementations whenever they evict a
        stale claim, so churn accounting is uniform across callers.
        """

    @abc.abstractmethod
    def lease_breaks(self, key: str) -> int:
        """How many times ``key``'s lease has been broken (0 if never)."""

    @abc.abstractmethod
    def lease_break_counts(self) -> dict[str, int]:
        """``{key: breaks}`` for every key with at least one break."""

    @abc.abstractmethod
    def reset_lease_breaks(self, key: str) -> None:
        """Forget ``key``'s break counter (requeue gives a clean slate)."""

    def quarantine_task(self, key: str, *, reason: str = "") -> bool:
        """Park ``key``'s pending descriptor in the quarantine table.

        Moves the task out of the queue (drain loops no longer see it),
        releases any claim, and records why.  Returns ``True`` when the
        key is quarantined after the call — including when a peer parked
        it first — and ``False`` when there is nothing to park.
        """
        if self.load_quarantined(key) is not None:
            self.delete_task(key)  # a peer parked it mid-scan
            return True
        payload = self.load_task(key)
        if payload is None:
            return False
        self.save_quarantined(
            key,
            {
                "schema": _SCHEMA_VERSION,
                "payload": payload,
                "reason": reason,
                "lease_breaks": self.lease_breaks(key),
                "quarantined_at": time.time(),
            },
        )
        self.delete_task(key)
        self.release_claim(key)
        return True

    def requeue_quarantined(self, key: str) -> bool:
        """Release a quarantined descriptor back into the task queue.

        Restores the descriptor, clears the quarantine record and the
        break counter (the operator decided it deserves a clean slate).
        Returns ``False`` when ``key`` is not quarantined.
        """
        record = self.load_quarantined(key)
        if record is None:
            return False
        payload = record.get("payload")
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"quarantine record {key!r} in {self.locator} has no task payload"
            )
        self.save_task(key, payload)
        self.delete_quarantined(key)
        self.reset_lease_breaks(key)
        self.release_claim(key)
        return True

    @abc.abstractmethod
    def save_quarantined(self, key: str, record: dict) -> None:
        """Persist one quarantine record."""

    @abc.abstractmethod
    def load_quarantined(self, key: str) -> dict | None:
        """The quarantine record for ``key``, or ``None``."""

    @abc.abstractmethod
    def delete_quarantined(self, key: str) -> None:
        """Remove a quarantine record (no-op when already gone)."""

    @abc.abstractmethod
    def list_quarantined(self) -> list[str]:
        """Keys currently quarantined, ascending."""

    # ------------------------------------------------------------------
    # Checkpoint table (timeline delta-chain links)
    # ------------------------------------------------------------------
    def put_checkpoint(self, key: str, payload: dict) -> bool:
        """Store one checkpoint chain link if absent; ``True`` if created.

        Keys are stage content keys (they commit to the whole event
        prefix plus the strategy lineup), so concurrent workers racing
        the same boundary write byte-identical payloads — the
        conditional put is a write-amplification saver, not a
        correctness requirement.
        """
        created = self.save_checkpoint_record(key, payload)
        if created:
            self._bump_checkpoint_meta("writes")
        if _met.ENABLED:
            _met.REGISTRY.inc("store.ckpt.write" if created else "store.ckpt.dup")
        return created

    def get_checkpoint(self, key: str) -> dict | None:
        """The chain link stored under ``key``, or ``None`` if absent."""
        record = self.load_checkpoint_record(key)
        self._bump_checkpoint_meta("hits" if record is not None else "misses")
        if _met.ENABLED:
            _met.REGISTRY.inc("store.ckpt.hit" if record is not None else "store.ckpt.miss")
        return record

    @abc.abstractmethod
    def save_checkpoint_record(self, key: str, payload: dict) -> bool:
        """Persist one chain link if absent; ``True`` when this call won."""

    @abc.abstractmethod
    def load_checkpoint_record(self, key: str) -> dict | None:
        """The stored chain link for ``key``, or ``None``."""

    @abc.abstractmethod
    def list_checkpoints(self) -> list[str]:
        """All stored checkpoint keys, ascending."""

    @abc.abstractmethod
    def delete_checkpoint(self, key: str) -> None:
        """Remove one chain link (no-op when already gone)."""

    def checkpoint_stats(self) -> dict:
        """``{count, bytes, hits, misses, writes, gc_removed}`` for the table.

        ``count``/``bytes`` are live table state; the rest are
        cumulative fleet totals from the meta row (best-effort — see
        :meth:`_bump_checkpoint_meta`).  Backends with a cheaper bulk
        path (SQLite) override the size scan.
        """
        total = 0
        keys = self.list_checkpoints()
        for key in keys:
            record = self.load_checkpoint_record(key)
            if record is not None:
                total += len(json.dumps(record, sort_keys=True))
        return {"count": len(keys), "bytes": total, **self._checkpoint_meta()}

    def _checkpoint_meta(self) -> dict:
        meta = self.load_checkpoint_meta() or {}
        return {
            field: int(meta.get(field, 0)) for field in ("hits", "misses", "writes", "gc_removed")
        }

    def _bump_checkpoint_meta(self, field: str, by: int = 1) -> None:
        """Best-effort fleet counter (read-modify-write; races lose ticks).

        The meta row feeds ``store stats``' checkpoint line only — it is
        never consulted by resume logic, so a lost increment under
        concurrent workers costs nothing but display precision.
        """
        meta = self.load_checkpoint_meta() or {}
        meta[field] = int(meta.get(field, 0)) + by
        self.save_checkpoint_meta(meta)

    @abc.abstractmethod
    def save_checkpoint_meta(self, meta: dict) -> None:
        """Persist the checkpoint-table counter row (latest-wins)."""

    @abc.abstractmethod
    def load_checkpoint_meta(self) -> dict | None:
        """The checkpoint-table counter row, or ``None``."""

    def gc_checkpoints(self) -> dict:
        """Prune chain links no live sweep manifest references.

        Every link written through an executor is stamped with the point
        keys of the group that cut it; a link is *live* while any of
        those points appears in some stored manifest's ``points`` list.
        Unstamped links (ad-hoc ``compute_group`` calls) and links whose
        sweeps were migrated away are removed — pruning only costs a
        future fleet the replay the link would have saved, never
        correctness.  Returns ``{"kept": n, "removed": n}``.
        """
        live: set[str] = set()
        for sweep_key in self.list_manifests():
            manifest = self.load_manifest(sweep_key) or {}
            live.update(manifest.get("points", ()))
        kept = removed = 0
        for key in self.list_checkpoints():
            record = self.load_checkpoint_record(key)
            refs = (record or {}).get("points") or ()
            if record is not None and any(point in live for point in refs):
                kept += 1
            else:
                self.delete_checkpoint(key)
                removed += 1
        if removed:
            self._bump_checkpoint_meta("gc_removed", removed)
        return {"kept": kept, "removed": removed}

    # ------------------------------------------------------------------
    # Worker heartbeats
    # ------------------------------------------------------------------
    def record_heartbeat(self, worker: str) -> None:
        """Stamp ``worker``'s liveness (wall-clock time + pid).

        Workers beat every fraction of the lease TTL (see
        :mod:`repro.sim.executor`); the monitor flags a worker whose
        last beat is older than the TTL as stale instead of showing it
        as silently live.  Latest-wins per worker name.
        """
        self.save_heartbeat_record(worker, {"at": time.time(), "pid": os.getpid()})

    def heartbeats(self) -> dict[str, float]:
        """``{worker: last heartbeat epoch seconds}`` for every worker."""
        return {
            worker: float(record.get("at", 0.0))
            for worker, record in self.heartbeat_records().items()
        }

    @abc.abstractmethod
    def save_heartbeat_record(self, worker: str, record: dict) -> None:
        """Persist one worker's latest heartbeat record."""

    @abc.abstractmethod
    def heartbeat_records(self) -> dict[str, dict]:
        """All stored heartbeat records keyed by worker name."""

    # ------------------------------------------------------------------
    # Introspection / migration
    # ------------------------------------------------------------------
    def iter_point_records(self) -> Iterator[tuple[str, dict]]:
        """Yield ``(key, record)`` for every stored point.

        The monitor and ``store export`` walk this for point-level
        contexts (sweep value, run, worker, save time); backends with a
        cheaper bulk path (SQLite) override the per-key default.
        """
        for key in self.list_points():
            record = self.load_point_record(key)
            if record is not None:
                yield key, record

    def queue_stats(
        self,
        *,
        claim_info: dict[str, dict] | None = None,
        quarantined: "list[str] | None" = None,
    ) -> dict:
        """Cheap aggregate counts for ``store stats`` / ``store watch``.

        Everything here is a count or an age — no point payloads are
        read, so polling this in a watch loop stays cheap even on
        10⁴+-point stores.  A caller that already fetched the claim
        table or the quarantine listing for its own display (the
        monitor does both) passes them in, so one snapshot never pays
        the backend twice for the same scan.
        """
        info = self.claim_info() if claim_info is None else claim_info
        parked = self.list_quarantined() if quarantined is None else quarantined
        ages = [c["age"] for c in info.values()]
        return {
            "backend": self.kind,
            "locator": self.locator,
            "points": len(self.list_points()),
            "manifests": len(self.list_manifests()),
            "series": len(self.list_series()),
            "tasks": len(self.pending_task_keys()),
            "claims": len(info),
            "oldest_claim_age": max(ages, default=0.0),
            "quarantined": len(parked),
            "lease_breaks": sum(self.lease_break_counts().values()),
            "checkpoints": self.checkpoint_stats(),
        }

    def describe(self) -> dict:
        """Artifact counts for ``minim-cdma store ls``."""
        return {
            "backend": self.kind,
            "locator": self.locator,
            "points": len(self.list_points()),
            "manifests": len(self.list_manifests()),
            "series": self.list_series(),
            "tasks": len(self.pending_task_keys()),
            "claims": len(self.list_claims()),
            "quarantined": len(self.list_quarantined()),
            "checkpoints": len(self.list_checkpoints()),
        }

    def migrate_to(self, dst: "ResultsBackend") -> dict:
        """Copy every artifact into ``dst``; returns copy counts."""
        return migrate_store(self, dst)


def migrate_store(src: ResultsBackend, dst: ResultsBackend) -> dict:
    """Copy all points, manifests and series from ``src`` into ``dst``.

    Pending tasks and claims are transient queue state and are *not*
    migrated.  Checkpoint chain links travel with the manifests that
    reference them, so a migrated fleet keeps its shared prefixes.
    Returns ``{"points": n, "manifests": n, "series": n, "checkpoints": n}``.
    """
    counts = {"points": 0, "manifests": 0, "series": 0, "checkpoints": 0}
    for key in src.list_points():
        record = src.load_point_record(key)
        if record is not None:
            dst.save_point_record(key, record)
            counts["points"] += 1
    for sweep_key in src.list_manifests():
        manifest = src.load_manifest(sweep_key)
        if manifest is not None:
            dst.save_manifest(sweep_key, manifest)
            counts["manifests"] += 1
    for experiment_id in src.list_series():
        data = src.load_series_dict(experiment_id)
        if data is not None:
            dst.save_series_dict(experiment_id, data)
            counts["series"] += 1
    for key in src.list_checkpoints():
        record = src.load_checkpoint_record(key)
        if record is not None:
            dst.save_checkpoint_record(key, record)
            counts["checkpoints"] += 1
    return counts


class CheckpointScope:
    """A backend's checkpoint table scoped to one task group.

    The handle :func:`repro.sim.timeline.compute_group` writes chain
    links through.  Every link is stamped with the point keys of the
    group that cut it, which is what ties a content-keyed link back to
    sweep manifests: :meth:`ResultsBackend.gc_checkpoints` keeps a link
    while any stamped point appears in a live manifest's ``points``
    list.  Reads pass through unstamped (links are shared across
    groups and sweeps by content key).
    """

    def __init__(self, backend: ResultsBackend, points: Sequence[str] = ()) -> None:
        self.backend = backend
        self.points = list(points)

    def put_checkpoint(self, key: str, payload: dict) -> bool:
        """Write one link through, stamped with this group's points."""
        if self.points:
            payload = {**payload, "points": self.points}
        return self.backend.put_checkpoint(key, payload)

    def get_checkpoint(self, key: str) -> dict | None:
        """Read one link (pass-through)."""
        return self.backend.get_checkpoint(key)


class JsonDirBackend(ResultsBackend):
    """Filesystem-backed results: one JSON file per artifact.

    Layout under ``root``: ``points/<key>.json``,
    ``sweeps/<sweep-key>.json``, ``series/<experiment-id>.json``,
    ``tasks/<key>.json`` and ``claims/<key>.lease``.  All writes go
    through write-then-rename, so concurrent readers (and workers on a
    shared filesystem) never observe partial files.

    Parameters
    ----------
    root:
        Store directory; created on first write.
    """

    kind = "json"

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)

    @property
    def locator(self) -> str:
        """The store directory (re-opens via :func:`open_backend`)."""
        return str(self.root)

    # ------------------------------------------------------------------
    # Point artifacts
    # ------------------------------------------------------------------
    def point_path(self, key: str) -> Path:
        """Where the artifact for ``key`` lives."""
        return self.root / "points" / f"{key}.json"

    def point_locator(self, key: str) -> str:
        """The point artifact's filesystem path."""
        return str(self.point_path(key))

    def load_point_record(self, key: str) -> dict | None:
        """Read one point record, wrapping corrupt JSON with its path."""
        return self._read_json(self.point_path(key), "results artifact")

    def save_point_record(self, key: str, record: dict) -> None:
        """Write one point record atomically."""
        self._write_json(self.point_path(key), record)

    def list_points(self) -> list[str]:
        """Stored point keys, ascending."""
        return sorted(p.stem for p in self.root.glob("points/*.json"))

    # ------------------------------------------------------------------
    # Sweep manifests
    # ------------------------------------------------------------------
    def manifest_path(self, sweep_key: str) -> Path:
        """Where the manifest for ``sweep_key`` lives."""
        return self.root / "sweeps" / f"{sweep_key}.json"

    def save_manifest(self, sweep_key: str, manifest: dict) -> None:
        """Persist a sweep's run manifest."""
        self._write_json(self.manifest_path(sweep_key), manifest)

    def load_manifest(self, sweep_key: str) -> dict | None:
        """The manifest for ``sweep_key``, or ``None`` if absent."""
        return self._read_json(self.manifest_path(sweep_key), "sweep manifest")

    def list_manifests(self) -> list[str]:
        """Stored sweep keys, ascending."""
        return sorted(p.stem for p in self.root.glob("sweeps/*.json"))

    # ------------------------------------------------------------------
    # Assembled series
    # ------------------------------------------------------------------
    def series_path(self, experiment_id: str) -> Path:
        """Where the assembled series for ``experiment_id`` lives."""
        return self.root / "series" / f"{experiment_id}.json"

    def save_series_dict(self, experiment_id: str, data: dict) -> None:
        """Persist one assembled series dict."""
        self._write_json(self.series_path(experiment_id), data)

    def load_series_dict(self, experiment_id: str) -> dict | None:
        """Read one series dict, wrapping corrupt JSON with its path."""
        return self._read_json(self.series_path(experiment_id), "series artifact")

    def list_series(self) -> list[str]:
        """Experiment ids with an assembled series, ascending."""
        return sorted(p.stem for p in self.root.glob("series/*.json"))

    # ------------------------------------------------------------------
    # Worker queue: tasks + claims
    # ------------------------------------------------------------------
    def task_path(self, key: str) -> Path:
        """Where the task descriptor for ``key`` lives."""
        return self.root / "tasks" / f"{key}.json"

    def save_task(self, key: str, payload: dict) -> None:
        """Publish one pending task descriptor."""
        self._write_json(self.task_path(key), payload)

    def load_task(self, key: str) -> dict | None:
        """The pending task descriptor for ``key``, or ``None``."""
        return self._read_json(self.task_path(key), "task descriptor")

    def delete_task(self, key: str) -> None:
        """Remove a task descriptor (idempotent)."""
        self.task_path(key).unlink(missing_ok=True)

    def pending_task_keys(self) -> list[str]:
        """Keys of all published task descriptors, ascending."""
        return sorted(p.stem for p in self.root.glob("tasks/*.json"))

    def claim_path(self, key: str) -> Path:
        """Where the lease file for ``key`` lives."""
        return self.root / "claims" / f"{key}.lease"

    def try_claim(self, key: str, owner: str, *, ttl: float = DEFAULT_CLAIM_TTL) -> bool:
        """Claim via ``O_CREAT|O_EXCL`` lease file; breaks stale leases.

        Creation itself is atomic; only *stale-lease breaking* races.
        After creating a lease the owner is read back and verified,
        which catches a concurrent breaker unlinking our fresh file —
        but two breakers interleaved across the whole break/create
        window can still each see their own name and both win.  Claims
        are therefore a work-dedup lever, not a mutual-exclusion
        guarantee: duplicates stay possible (at-least-once) and stay
        safe, because point saves are idempotent and content-keyed.
        Callers needing hard exclusivity must not build it on leases.
        """
        path = self.claim_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        broke_stale = False
        for attempt in range(2):
            try:
                fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL)
            except FileExistsError:
                if attempt:
                    return False
                try:
                    stale = (time.time() - path.stat().st_mtime) > ttl
                except FileNotFoundError:
                    continue  # holder released between open and stat; retry
                if not stale:
                    return False
                path.unlink(missing_ok=True)  # break the abandoned lease
                broke_stale = True
                continue
            with os.fdopen(fd, "w") as fh:
                json.dump({"owner": owner, "claimed_at": time.time()}, fh)
            won = self._claim_owner(path) == owner
            if won and broke_stale:
                # counted only by the breaker that went on to *win* the
                # claim: racing breakers may both unlink, but one real
                # eviction must not count as two (the counter feeds the
                # quarantine threshold)
                self.record_lease_break(key)
            return won
        return False  # pragma: no cover - loop always returns

    def _claim_owner(self, path: Path) -> str | None:
        try:
            return json.loads(path.read_text()).get("owner")
        except (FileNotFoundError, json.JSONDecodeError):
            return None

    def renew_claim(self, key: str, owner: str) -> None:
        """Bump the lease mtime while still held by ``owner``."""
        path = self.claim_path(key)
        if self._claim_owner(path) == owner:
            try:
                os.utime(path)
            except FileNotFoundError:  # released concurrently: nothing to renew
                pass

    def release_claim(self, key: str) -> None:
        """Remove the lease file (idempotent)."""
        self.claim_path(key).unlink(missing_ok=True)

    def list_claims(self) -> list[str]:
        """Keys currently under claim, ascending."""
        return sorted(p.stem for p in self.root.glob("claims/*.lease"))

    def claim_info(self) -> dict[str, dict]:
        """Owner (from the lease body) and age (from the lease mtime).

        The mtime is what ``renew_claim`` bumps, so age measures time
        since the holder last made progress.
        """
        now = time.time()
        out: dict[str, dict] = {}
        for path in sorted(self.root.glob("claims/*.lease")):
            try:
                mtime = path.stat().st_mtime
            except FileNotFoundError:  # released mid-scan
                continue
            out[path.stem] = {
                "owner": self._claim_owner(path) or "<unknown>",
                "age": max(0.0, now - mtime),
            }
        return out

    def claim_age(self, key: str) -> float | None:
        """One stat call on the lease file (no table scan)."""
        try:
            mtime = self.claim_path(key).stat().st_mtime
        except FileNotFoundError:
            return None
        return max(0.0, time.time() - mtime)

    # ------------------------------------------------------------------
    # Lease churn + quarantine
    # ------------------------------------------------------------------
    def churn_path(self, key: str) -> Path:
        """Where the break counter for ``key`` lives."""
        return self.root / "churn" / f"{key}.json"

    def record_lease_break(self, key: str) -> int:
        """Bump the break counter file (read-modify-write; advisory)."""
        breaks = self.lease_breaks(key) + 1
        self._write_json(self.churn_path(key), {"breaks": breaks})
        obs.event("queue.lease_break", cat="queue", key=key, breaks=breaks)
        return breaks

    def lease_breaks(self, key: str) -> int:
        """The break counter for ``key`` (0 if never broken)."""
        record = self._read_json(self.churn_path(key), "lease-break counter")
        return int(record.get("breaks", 0)) if record else 0

    def lease_break_counts(self) -> dict[str, int]:
        """Break counters of every churned key."""
        return {
            p.stem: breaks
            for p in sorted(self.root.glob("churn/*.json"))
            if (breaks := self.lease_breaks(p.stem)) > 0
        }

    def reset_lease_breaks(self, key: str) -> None:
        """Drop the break counter file (idempotent)."""
        self.churn_path(key).unlink(missing_ok=True)

    def quarantine_path(self, key: str) -> Path:
        """Where the quarantine record for ``key`` lives."""
        return self.root / "quarantine" / f"{key}.json"

    def save_quarantined(self, key: str, record: dict) -> None:
        """Write one quarantine record atomically."""
        self._write_json(self.quarantine_path(key), record)

    def load_quarantined(self, key: str) -> dict | None:
        """The quarantine record for ``key``, or ``None``."""
        return self._read_json(self.quarantine_path(key), "quarantine record")

    def delete_quarantined(self, key: str) -> None:
        """Remove a quarantine record (idempotent)."""
        self.quarantine_path(key).unlink(missing_ok=True)

    def list_quarantined(self) -> list[str]:
        """Keys currently quarantined, ascending."""
        return sorted(p.stem for p in self.root.glob("quarantine/*.json"))

    # ------------------------------------------------------------------
    # Worker heartbeats
    # ------------------------------------------------------------------
    def heartbeat_path(self, worker: str) -> Path:
        """Where the heartbeat record for ``worker`` lives."""
        return self.root / "heartbeats" / f"{worker}.json"

    def save_heartbeat_record(self, worker: str, record: dict) -> None:
        """Write one heartbeat record atomically (latest-wins)."""
        self._write_json(self.heartbeat_path(worker), record)

    def heartbeat_records(self) -> dict[str, dict]:
        """All heartbeat records keyed by worker name."""
        out: dict[str, dict] = {}
        for path in sorted(self.root.glob("heartbeats/*.json")):
            record = self._read_json(path, "heartbeat record")
            if record is not None:
                out[path.stem] = record
        return out

    # ------------------------------------------------------------------
    # Checkpoint table
    # ------------------------------------------------------------------
    def checkpoint_path(self, key: str) -> Path:
        """Where the chain link for ``key`` lives."""
        return self.root / "checkpoints" / f"{key}.json"

    def save_checkpoint_record(self, key: str, payload: dict) -> bool:
        """If-absent link write: atomic tmp-file + ``os.link`` publish.

        ``link(2)`` fails with ``EEXIST`` when the target exists, which
        makes create-if-absent atomic even on shared filesystems — and
        readers never observe a partial file, because the payload is
        fully written before the name appears.
        """
        path = self.checkpoint_path(key)
        if path.exists():
            return False
        tmp = self._write_json(path.with_name(f".{key}.{os.getpid()}.tmp"), payload)
        try:
            os.link(tmp, path)
            return True
        except FileExistsError:
            return False
        finally:
            tmp.unlink(missing_ok=True)

    def load_checkpoint_record(self, key: str) -> dict | None:
        """Read one chain link, wrapping corrupt JSON with its path."""
        return self._read_json(self.checkpoint_path(key), "checkpoint link")

    def list_checkpoints(self) -> list[str]:
        """Stored checkpoint keys, ascending."""
        return sorted(p.stem for p in self.root.glob("checkpoints/*.json"))

    def delete_checkpoint(self, key: str) -> None:
        """Remove one chain link (idempotent)."""
        self.checkpoint_path(key).unlink(missing_ok=True)

    def checkpoint_stats(self) -> dict:
        """Table stats from file sizes (no payload reads)."""
        files = list(self.root.glob("checkpoints/*.json"))
        return {
            "count": len(files),
            "bytes": sum(p.stat().st_size for p in files),
            **self._checkpoint_meta(),
        }

    def save_checkpoint_meta(self, meta: dict) -> None:
        """Write the counter row atomically (latest-wins)."""
        self._write_json(self.root / "meta" / "checkpoints.json", meta)

    def load_checkpoint_meta(self) -> dict | None:
        """Read the counter row."""
        return self._read_json(self.root / "meta" / "checkpoints.json", "checkpoint meta")

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self) -> "SqliteBackend":
        """Fold this directory store into one SQLite table set, in place.

        Creates ``<root>/store.sqlite`` holding every point, manifest
        and series, then removes the per-artifact JSON files.  Because
        :func:`open_backend` routes a directory containing
        ``store.sqlite`` to :class:`SqliteBackend`, existing
        ``--results <root>`` invocations keep resolving (and resuming)
        transparently after compaction.  Queue state (tasks, claims,
        churn counters, quarantine) is transient and is dropped, like
        in :func:`migrate_store`.
        """
        import shutil

        dst = SqliteBackend(self.root / _SQLITE_BASENAME)
        self.gc_checkpoints()  # only links a live manifest references travel
        migrate_store(self, dst)
        for sub in (
            "points",
            "sweeps",
            "series",
            "tasks",
            "claims",
            "churn",
            "quarantine",
            "heartbeats",
            "checkpoints",
            "meta",
        ):
            shutil.rmtree(self.root / sub, ignore_errors=True)
        return dst

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _read_json(self, path: Path, what: str) -> dict | None:
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"corrupt {what} {path}: {exc}") from exc

    def _write_json(self, path: Path, payload: Any) -> Path:
        """Write-then-rename so readers never observe partial files."""
        from repro.analysis.series import write_json_atomic

        return write_json_atomic(path, payload)


#: Backwards-compatible alias: the pre-refactor store class name.
ResultsStore = JsonDirBackend


class SqliteBackend(ResultsBackend):
    """Single-file SQLite results store (stdlib ``sqlite3`` only).

    One table per artifact kind (``points`` / ``manifests`` / ``series``
    / ``tasks`` / ``claims``), each a key → JSON-payload row.  Intended
    for 10⁴+-point sweeps where a directory of tiny JSON files stops
    scaling, and as the shared store of multi-process worker drains
    (SQLite's file locking serializes writers; every operation is one
    short transaction on its own connection, so backends are trivially
    picklable across process pools).

    Parameters
    ----------
    path:
        The database file.  A directory is accepted and resolves to
        ``<dir>/store.sqlite`` (the compaction layout).
    """

    kind = "sqlite"

    #: Artifact kinds stored as rows of the ``artifacts`` table.
    _TABLES = (
        "points",
        "manifests",
        "series",
        "tasks",
        "churn",
        "quarantine",
        "heartbeats",
        "checkpoints",
        "meta",
    )

    def __init__(self, path: Path | str) -> None:
        path = Path(path)
        if path.is_dir() or (not path.exists() and not path.suffix):
            path = path / _SQLITE_BASENAME
        self.path = path
        self._schema_ready = False

    @property
    def locator(self) -> str:
        """The database file path (re-opens via :func:`open_backend`)."""
        return str(self.path)

    @contextmanager
    def _connect(self) -> Iterator[sqlite3.Connection]:
        """One short transaction on a fresh connection (always closed).

        A connection per operation keeps the backend free of open
        handles, hence picklable and safe to share across process pools
        and forked workers; SQLite's file locking (with a 30 s busy
        timeout) serializes concurrent writers.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(self.path, timeout=30.0)
        try:
            if not self._schema_ready:
                # once per backend instance, not per operation: the
                # tables persist in the file, and hot paths (cache
                # probes, drain polls) open thousands of connections
                conn.execute(
                    "CREATE TABLE IF NOT EXISTS artifacts ("
                    " kind TEXT NOT NULL, key TEXT NOT NULL, payload TEXT NOT NULL,"
                    " PRIMARY KEY (kind, key))"
                )
                conn.execute(
                    "CREATE TABLE IF NOT EXISTS claims ("
                    " key TEXT PRIMARY KEY, owner TEXT NOT NULL, claimed_at REAL NOT NULL)"
                )
                self._schema_ready = True
            with conn:  # commit on success, roll back on error
                yield conn
        finally:
            conn.close()

    # -- generic key/JSON rows ------------------------------------------
    def _get(self, kind: str, key: str) -> dict | None:
        with self._connect() as conn:
            row = conn.execute(
                "SELECT payload FROM artifacts WHERE kind = ? AND key = ?", (kind, key)
            ).fetchone()
        if row is None:
            return None
        try:
            return json.loads(row[0])
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"corrupt {kind} row {key!r} in {self.path}: {exc}") from exc

    def _put(self, kind: str, key: str, payload: dict) -> None:
        with self._connect() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO artifacts (kind, key, payload) VALUES (?, ?, ?)",
                (kind, key, json.dumps(payload, sort_keys=True)),
            )

    def _keys(self, kind: str) -> list[str]:
        if not self.path.exists():
            return []
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT key FROM artifacts WHERE kind = ? ORDER BY key", (kind,)
            ).fetchall()
        return [r[0] for r in rows]

    def _delete(self, kind: str, key: str) -> None:
        if not self.path.exists():
            return
        with self._connect() as conn:
            conn.execute("DELETE FROM artifacts WHERE kind = ? AND key = ?", (kind, key))

    # -- points ----------------------------------------------------------
    def load_point_record(self, key: str) -> dict | None:
        """Read one point record row."""
        if not self.path.exists():
            return None
        return self._get("points", key)

    def save_point_record(self, key: str, record: dict) -> None:
        """Upsert one point record row."""
        self._put("points", key, record)

    def list_points(self) -> list[str]:
        """Stored point keys, ascending."""
        return self._keys("points")

    def load_points(self, keys: list[str]) -> dict[str, object]:
        """Bulk point fetch: one ``IN`` query per chunk of 500 keys."""
        if not keys or not self.path.exists():
            if _met.ENABLED and keys:
                _met.REGISTRY.inc("store.point.miss", len(keys))
            return {}
        out: dict[str, object] = {}
        with self._connect() as conn:
            for start in range(0, len(keys), 500):
                chunk = keys[start : start + 500]
                marks = ",".join("?" for _ in chunk)
                rows = conn.execute(
                    "SELECT key, payload FROM artifacts WHERE kind = 'points' "
                    f"AND key IN ({marks})",  # marks is "?,?,..." placeholders only
                    chunk,
                ).fetchall()
                for key, payload in rows:
                    try:
                        out[key] = json.loads(payload)["result"]
                    except (json.JSONDecodeError, KeyError) as exc:
                        raise ConfigurationError(
                            f"corrupt points row {key!r} in {self.path}: {exc}"
                        ) from exc
        if _met.ENABLED:
            _met.REGISTRY.inc("store.point.hit", len(out))
            _met.REGISTRY.inc("store.point.miss", len(keys) - len(out))
        return out

    # -- manifests -------------------------------------------------------
    def save_manifest(self, sweep_key: str, manifest: dict) -> None:
        """Upsert a sweep's run manifest row."""
        self._put("manifests", sweep_key, manifest)

    def load_manifest(self, sweep_key: str) -> dict | None:
        """The manifest row for ``sweep_key``, or ``None``."""
        if not self.path.exists():
            return None
        return self._get("manifests", sweep_key)

    def list_manifests(self) -> list[str]:
        """Stored sweep keys, ascending."""
        return self._keys("manifests")

    # -- series ----------------------------------------------------------
    def save_series_dict(self, experiment_id: str, data: dict) -> None:
        """Upsert one assembled series row."""
        self._put("series", experiment_id, data)

    def load_series_dict(self, experiment_id: str) -> dict | None:
        """The stored series dict for ``experiment_id``, or ``None``."""
        if not self.path.exists():
            return None
        return self._get("series", experiment_id)

    def list_series(self) -> list[str]:
        """Experiment ids with an assembled series, ascending."""
        return self._keys("series")

    # -- checkpoints -----------------------------------------------------
    def save_checkpoint_record(self, key: str, payload: dict) -> bool:
        """If-absent link write: ``INSERT OR IGNORE`` on the artifacts table."""
        with self._connect() as conn:
            cur = conn.execute(
                "INSERT OR IGNORE INTO artifacts (kind, key, payload) "
                "VALUES ('checkpoints', ?, ?)",
                (key, json.dumps(payload, sort_keys=True)),
            )
            return cur.rowcount > 0

    def load_checkpoint_record(self, key: str) -> dict | None:
        """The stored chain link for ``key``, or ``None``."""
        if not self.path.exists():
            return None
        return self._get("checkpoints", key)

    def list_checkpoints(self) -> list[str]:
        """Stored checkpoint keys, ascending."""
        return self._keys("checkpoints")

    def delete_checkpoint(self, key: str) -> None:
        """Remove one chain link row (idempotent)."""
        self._delete("checkpoints", key)

    def checkpoint_stats(self) -> dict:
        """Table stats in one aggregate query (no payload reads)."""
        count, total = 0, 0
        if self.path.exists():
            with self._connect() as conn:
                count, total = conn.execute(
                    "SELECT COUNT(*), COALESCE(SUM(LENGTH(payload)), 0) "
                    "FROM artifacts WHERE kind = 'checkpoints'"
                ).fetchone()
        return {"count": int(count), "bytes": int(total), **self._checkpoint_meta()}

    def save_checkpoint_meta(self, meta: dict) -> None:
        """Upsert the counter row."""
        self._put("meta", "checkpoints", meta)

    def load_checkpoint_meta(self) -> dict | None:
        """The counter row, or ``None``."""
        if not self.path.exists():
            return None
        return self._get("meta", "checkpoints")

    # -- tasks + claims --------------------------------------------------
    def save_task(self, key: str, payload: dict) -> None:
        """Publish one pending task descriptor row."""
        self._put("tasks", key, payload)

    def load_task(self, key: str) -> dict | None:
        """The pending task descriptor for ``key``, or ``None``."""
        if not self.path.exists():
            return None
        return self._get("tasks", key)

    def delete_task(self, key: str) -> None:
        """Remove a task descriptor row (idempotent)."""
        self._delete("tasks", key)

    def pending_task_keys(self) -> list[str]:
        """Keys of all published task descriptors, ascending."""
        return self._keys("tasks")

    def try_claim(self, key: str, owner: str, *, ttl: float = DEFAULT_CLAIM_TTL) -> bool:
        """Claim via ``INSERT OR IGNORE``; stale rows are purged first.

        Purging a stale row counts one lease break in the same
        transaction, so exactly the claimant that evicted the dead
        holder does the churn accounting.
        """
        now = time.time()
        with self._connect() as conn:
            cur = conn.execute(
                "DELETE FROM claims WHERE key = ? AND claimed_at < ?", (key, now - ttl)
            )
            if cur.rowcount > 0:
                self._bump_churn(conn, key)
            cur = conn.execute(
                "INSERT OR IGNORE INTO claims (key, owner, claimed_at) VALUES (?, ?, ?)",
                (key, owner, now),
            )
            return cur.rowcount == 1

    def renew_claim(self, key: str, owner: str) -> None:
        """Bump the claim row's timestamp while still held by ``owner``."""
        if not self.path.exists():
            return
        with self._connect() as conn:
            conn.execute(
                "UPDATE claims SET claimed_at = ? WHERE key = ? AND owner = ?",
                (time.time(), key, owner),
            )

    def release_claim(self, key: str) -> None:
        """Delete the claim row (idempotent)."""
        if not self.path.exists():
            return
        with self._connect() as conn:
            conn.execute("DELETE FROM claims WHERE key = ?", (key,))

    def list_claims(self) -> list[str]:
        """Keys currently under claim, ascending."""
        if not self.path.exists():
            return []
        with self._connect() as conn:
            rows = conn.execute("SELECT key FROM claims ORDER BY key").fetchall()
        return [r[0] for r in rows]

    def claim_info(self) -> dict[str, dict]:
        """Owner and age straight from the claim rows."""
        if not self.path.exists():
            return {}
        now = time.time()
        with self._connect() as conn:
            rows = conn.execute("SELECT key, owner, claimed_at FROM claims ORDER BY key").fetchall()
        return {key: {"owner": owner, "age": max(0.0, now - at)} for key, owner, at in rows}

    def claim_age(self, key: str) -> float | None:
        """One indexed row read (no table scan)."""
        if not self.path.exists():
            return None
        with self._connect() as conn:
            row = conn.execute("SELECT claimed_at FROM claims WHERE key = ?", (key,)).fetchone()
        return None if row is None else max(0.0, time.time() - row[0])

    # -- lease churn + quarantine ----------------------------------------
    def _bump_churn(self, conn: sqlite3.Connection, key: str) -> int:
        """Increment the churn row inside the caller's transaction."""
        row = conn.execute(
            "SELECT payload FROM artifacts WHERE kind = 'churn' AND key = ?", (key,)
        ).fetchone()
        breaks = (int(json.loads(row[0]).get("breaks", 0)) if row else 0) + 1
        conn.execute(
            "INSERT OR REPLACE INTO artifacts (kind, key, payload) VALUES ('churn', ?, ?)",
            (key, json.dumps({"breaks": breaks})),
        )
        obs.event("queue.lease_break", cat="queue", key=key, breaks=breaks)
        return breaks

    def record_lease_break(self, key: str) -> int:
        """Bump the churn row in its own short transaction."""
        with self._connect() as conn:
            return self._bump_churn(conn, key)

    def lease_breaks(self, key: str) -> int:
        """The break counter for ``key`` (0 if never broken)."""
        if not self.path.exists():
            return 0
        record = self._get("churn", key)
        return int(record.get("breaks", 0)) if record else 0

    def lease_break_counts(self) -> dict[str, int]:
        """Break counters of every churned key, one query."""
        if not self.path.exists():
            return {}
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT key, payload FROM artifacts WHERE kind = 'churn' ORDER BY key"
            ).fetchall()
        out: dict[str, int] = {}
        for key, payload in rows:
            breaks = int(json.loads(payload).get("breaks", 0))
            if breaks > 0:
                out[key] = breaks
        return out

    def reset_lease_breaks(self, key: str) -> None:
        """Drop the churn row (idempotent)."""
        self._delete("churn", key)

    def save_quarantined(self, key: str, record: dict) -> None:
        """Upsert one quarantine row."""
        self._put("quarantine", key, record)

    def load_quarantined(self, key: str) -> dict | None:
        """The quarantine record for ``key``, or ``None``."""
        if not self.path.exists():
            return None
        return self._get("quarantine", key)

    def delete_quarantined(self, key: str) -> None:
        """Remove a quarantine row (idempotent)."""
        self._delete("quarantine", key)

    def list_quarantined(self) -> list[str]:
        """Keys currently quarantined, ascending."""
        return self._keys("quarantine")

    # -- heartbeats ------------------------------------------------------
    def save_heartbeat_record(self, worker: str, record: dict) -> None:
        """Upsert one worker's heartbeat row (latest-wins)."""
        self._put("heartbeats", worker, record)

    def heartbeat_records(self) -> dict[str, dict]:
        """All heartbeat rows keyed by worker name, one query."""
        if not self.path.exists():
            return {}
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT key, payload FROM artifacts WHERE kind = 'heartbeats' ORDER BY key"
            ).fetchall()
        return {key: json.loads(payload) for key, payload in rows}

    # -- introspection ---------------------------------------------------
    def iter_point_records(self) -> Iterator[tuple[str, dict]]:
        """One query over all point rows (cheaper than per-key loads)."""
        if not self.path.exists():
            return
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT key, payload FROM artifacts WHERE kind = 'points' ORDER BY key"
            ).fetchall()
        for key, payload in rows:
            try:
                yield key, json.loads(payload)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"corrupt points row {key!r} in {self.path}: {exc}"
                ) from exc

    def queue_stats(
        self,
        *,
        claim_info: dict[str, dict] | None = None,
        quarantined: "list[str] | None" = None,
    ) -> dict:
        """All aggregate counts in one connection (watch-loop friendly).

        Prefetched ``claim_info``/``quarantined`` (see the base method)
        take precedence over the freshly queried values, so a caller's
        snapshot stays internally consistent.
        """
        stats = {
            "backend": self.kind,
            "locator": self.locator,
            "points": 0,
            "manifests": 0,
            "series": 0,
            "tasks": 0,
            "claims": len(claim_info) if claim_info is not None else 0,
            "oldest_claim_age": 0.0,
            "quarantined": len(quarantined) if quarantined is not None else 0,
            "lease_breaks": 0,
            "checkpoints": {
                "count": 0,
                "bytes": 0,
                "hits": 0,
                "misses": 0,
                "writes": 0,
                "gc_removed": 0,
            },
        }
        if claim_info is not None:
            ages = [c["age"] for c in claim_info.values()]
            stats["oldest_claim_age"] = max(ages, default=0.0)
        if not self.path.exists():
            return stats
        with self._connect() as conn:
            kind_counts = dict(
                conn.execute("SELECT kind, COUNT(*) FROM artifacts GROUP BY kind").fetchall()
            )
            ckpt_count, ckpt_bytes = conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(LENGTH(payload)), 0) "
                "FROM artifacts WHERE kind = 'checkpoints'"
            ).fetchone()
            if claim_info is None:
                n_claims, oldest = conn.execute(
                    "SELECT COUNT(*), MIN(claimed_at) FROM claims"
                ).fetchone()
                stats["claims"] = int(n_claims)
                stats["oldest_claim_age"] = (
                    max(0.0, time.time() - oldest) if oldest is not None else 0.0
                )
            churn_rows = conn.execute(
                "SELECT payload FROM artifacts WHERE kind = 'churn'"
            ).fetchall()
        stats.update(
            points=int(kind_counts.get("points", 0)),
            manifests=int(kind_counts.get("manifests", 0)),
            series=int(kind_counts.get("series", 0)),
            tasks=int(kind_counts.get("tasks", 0)),
            lease_breaks=sum(int(json.loads(p).get("breaks", 0)) for (p,) in churn_rows),
            checkpoints={
                "count": int(ckpt_count),
                "bytes": int(ckpt_bytes),
                **self._checkpoint_meta(),
            },
        )
        if quarantined is None:
            stats["quarantined"] = int(kind_counts.get("quarantine", 0))
        return stats

    # -- maintenance -----------------------------------------------------
    def compact(self) -> "SqliteBackend":
        """Reclaim free pages (``VACUUM``); returns self for chaining."""
        with self._connect() as conn:
            conn.execute("VACUUM")
        return self


def open_backend(path: Path | str, kind: str = "auto") -> ResultsBackend:
    """Resolve a path (or backend locator) to a results backend.

    ``kind`` forces ``"json"`` or ``"sqlite"``; the default ``"auto"``
    sniffs: an existing file, a ``.sqlite``/``.sqlite3``/``.db`` suffix,
    or a directory containing ``store.sqlite`` (the compaction layout)
    selects :class:`SqliteBackend`, anything else the JSON directory
    backend.  Workers use this to re-open the orchestrator's store from
    its locator string alone.
    """
    path = Path(path)
    if kind == "json":
        return JsonDirBackend(path)
    if kind == "sqlite":
        return SqliteBackend(path)
    if kind != "auto":
        raise ConfigurationError(
            f"unknown results-backend kind {kind!r} (expected auto/json/sqlite)"
        )
    if path.is_file():
        return SqliteBackend(path)
    if path.suffix in _SQLITE_SUFFIXES:
        return SqliteBackend(path)
    if (path / _SQLITE_BASENAME).exists():
        return SqliteBackend(path / _SQLITE_BASENAME)
    return JsonDirBackend(path)
