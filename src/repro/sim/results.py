"""Pluggable results backends for experiment sweeps.

A sweep persists four kinds of artifact through one
:class:`ResultsBackend`:

* **points** — one artifact per (sweep point, run), keyed by a content
  hash of the fully resolved point spec plus the run's seed.  Because
  keys depend only on *what was computed*, re-invoking an identical
  sweep finds every point already present and skips the computation
  (resume / caching); enlarging ``runs`` or appending sweep values
  recomputes only the missing points.
* **manifests** — one run manifest per sweep (content-keyed by the
  sweep's spec × runs × seed hash): the spec, the point keys it covers,
  the computed/cached split of the last invocation, and an embedded
  copy of the assembled series.
* **series** — the most recently assembled
  :class:`~repro.analysis.series.ExperimentSeries` per experiment id
  (latest-wins by design; the per-sweep copy inside the manifest stays
  addressable by sweep key).
* **tasks + claims** — the shared work queue of the worker executor
  (:mod:`repro.sim.executor`): pending task descriptors plus lease
  claims with a TTL, giving multiple worker processes (or hosts on a
  shared filesystem) at-least-once draining of one sweep.

Two backends implement the interface:

* :class:`JsonDirBackend` (the historical ``ResultsStore``) — plain
  JSON files under one root directory, rsyncable and diffable with
  ordinary tools.  Claims are ``O_EXCL`` lease files.
* :class:`SqliteBackend` — one stdlib-``sqlite3`` file holding every
  artifact kind as a table, for sweeps with 10⁴+ points where a
  directory of tiny JSON files stops scaling.  Claims are
  ``INSERT OR IGNORE`` rows.

:func:`open_backend` resolves a path (or locator string) to the right
backend, :func:`migrate_store` copies any backend into any other, and
:meth:`JsonDirBackend.compact` folds a JSON directory store into a
single SQLite table in place.
"""

from __future__ import annotations

import abc
import dataclasses
import hashlib
import json
import os
import sqlite3
import time
from collections.abc import Iterator
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - type-only
    from repro.analysis.series import ExperimentSeries
    from repro.sim.scenarios import ScenarioSpec

__all__ = [
    "JsonDirBackend",
    "ResultsBackend",
    "ResultsStore",
    "SqliteBackend",
    "migrate_store",
    "open_backend",
    "point_key",
    "seed_token",
    "spec_digest",
]

#: Bump when the artifact schema changes incompatibly; part of every key
#: so stale stores never satisfy a lookup from newer code.
_SCHEMA_VERSION = 1

#: Default lease lifetime: a claim older than this counts as abandoned
#: (its worker died) and may be re-claimed by anyone.
DEFAULT_CLAIM_TTL = 60.0

#: The SQLite file a compacted JSON store folds into (and the marker
#: :func:`open_backend` sniffs to route a directory to SQLite).
_SQLITE_BASENAME = "store.sqlite"
_SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")


def _canonical(obj: Any) -> str:
    """Deterministic JSON for hashing (sorted keys, no whitespace)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def spec_digest(spec: "ScenarioSpec", extra: dict | None = None) -> str:
    """Stable content hash of a scenario spec (plus optional context).

    Two specs hash equal iff every field — placement, mobility, churn,
    power, strategies, sweep configuration, measure — is equal, so a
    digest names one exact computation.
    """
    payload = {
        "schema": _SCHEMA_VERSION,
        "spec": dataclasses.asdict(spec),
        "extra": extra or {},
    }
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()[:20]


def seed_token(seed) -> str:
    """A stable string identity for a run seed.

    Accepts ints and ``numpy.random.SeedSequence`` objects (identified
    by entropy + spawn key, i.e. their reproducible derivation path —
    not by object identity).
    """
    entropy = getattr(seed, "entropy", None)
    if entropy is not None:
        spawn_key = tuple(getattr(seed, "spawn_key", ()))
        return f"ss-{entropy}-{'.'.join(map(str, spawn_key)) or 'root'}"
    return f"int-{int(seed)}"


def point_key(point_spec: "ScenarioSpec", seed) -> str:
    """The artifact key of one (resolved point spec, run seed) pair."""
    return spec_digest(point_spec, extra={"seed": seed_token(seed)})


class ResultsBackend(abc.ABC):
    """Storage interface every sweep artifact flows through.

    Concrete backends implement the raw record operations; the shared
    point/series conveniences (payload wrapping, missing-series errors,
    content keys) live here so all backends behave identically.
    """

    #: String that re-opens this backend in another process via
    #: :func:`open_backend` (a directory for JSON, a file for SQLite).
    locator: str

    #: Short backend kind tag (``"json"`` / ``"sqlite"``).
    kind: str

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    def point_key(self, point_spec: "ScenarioSpec", seed) -> str:
        """The artifact key of one (resolved point spec, run seed) pair."""
        return point_key(point_spec, seed)

    # ------------------------------------------------------------------
    # Point artifacts
    # ------------------------------------------------------------------
    def load_point(self, key: str) -> Any | None:
        """The stored result payload for ``key``, or ``None`` if absent."""
        record = self.load_point_record(key)
        if record is None:
            return None
        try:
            return record["result"]
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(
                f"corrupt results artifact {self.point_locator(key)}: {exc}"
            ) from exc

    def save_point(self, key: str, result: Any, *, context: dict | None = None) -> None:
        """Persist one point result (with provenance context) atomically.

        Saves are idempotent: the key is a content hash of the
        computation, so concurrent workers racing the same point write
        identical payloads and last-write-wins is safe.
        """
        self.save_point_record(
            key, {"schema": _SCHEMA_VERSION, "context": context or {}, "result": result}
        )

    def load_points(self, keys: "list[str]") -> dict[str, Any]:
        """``{key: result}`` for every stored key in ``keys``.

        Absent keys are omitted.  The batched cache probe of the claim
        stage and the worker drain loop; backends with a cheaper bulk
        path (SQLite) override the default per-key loop.
        """
        out: dict[str, Any] = {}
        for key in keys:
            result = self.load_point(key)
            if result is not None:
                out[key] = result
        return out

    def point_locator(self, key: str) -> str:
        """Human-readable location of one point artifact (error messages)."""
        return f"{self.locator}::points/{key}"

    @abc.abstractmethod
    def load_point_record(self, key: str) -> dict | None:
        """The full stored record for ``key`` (schema/context/result)."""

    @abc.abstractmethod
    def save_point_record(self, key: str, record: dict) -> None:
        """Persist one full point record atomically."""

    @abc.abstractmethod
    def list_points(self) -> list[str]:
        """All stored point keys, ascending (compaction / migration)."""

    # ------------------------------------------------------------------
    # Sweep manifests
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def save_manifest(self, sweep_key: str, manifest: dict) -> None:
        """Persist a sweep's run manifest."""

    @abc.abstractmethod
    def load_manifest(self, sweep_key: str) -> dict | None:
        """The manifest for ``sweep_key``, or ``None`` if absent."""

    @abc.abstractmethod
    def list_manifests(self) -> list[str]:
        """All stored sweep keys, ascending."""

    # ------------------------------------------------------------------
    # Assembled series
    # ------------------------------------------------------------------
    def save_series(self, series: "ExperimentSeries") -> None:
        """Persist an assembled series under its experiment id."""
        self.save_series_dict(series.experiment, series.to_dict())

    def load_series(self, experiment_id: str) -> "ExperimentSeries":
        """Load a previously assembled series by experiment id."""
        from repro.analysis.series import ExperimentSeries

        data = self.load_series_dict(experiment_id)
        if data is None:
            known = self.list_series()
            raise ConfigurationError(
                f"no stored series {experiment_id!r} under {self.locator} "
                f"(stored: {', '.join(known) or '<none>'})"
            )
        return ExperimentSeries.from_dict(data)

    @abc.abstractmethod
    def save_series_dict(self, experiment_id: str, data: dict) -> None:
        """Persist one assembled series as a plain dict."""

    @abc.abstractmethod
    def load_series_dict(self, experiment_id: str) -> dict | None:
        """The stored series dict for ``experiment_id``, or ``None``."""

    @abc.abstractmethod
    def list_series(self) -> list[str]:
        """Experiment ids with an assembled series, ascending."""

    # ------------------------------------------------------------------
    # Worker queue: tasks + claims
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def save_task(self, key: str, payload: dict) -> None:
        """Publish one pending task descriptor under ``key``."""

    @abc.abstractmethod
    def load_task(self, key: str) -> dict | None:
        """The pending task descriptor for ``key``, or ``None``."""

    @abc.abstractmethod
    def delete_task(self, key: str) -> None:
        """Remove a task descriptor (no-op when already gone)."""

    @abc.abstractmethod
    def pending_task_keys(self) -> list[str]:
        """Keys of all published task descriptors, ascending."""

    @abc.abstractmethod
    def try_claim(self, key: str, owner: str, *, ttl: float = DEFAULT_CLAIM_TTL) -> bool:
        """Atomically claim ``key`` for ``owner``; ``True`` on success.

        A claim older than ``ttl`` seconds counts as abandoned and is
        broken, so a worker that died mid-computation never wedges the
        queue (at-least-once semantics: the point may then be computed
        twice, which is safe because saves are idempotent).
        """

    @abc.abstractmethod
    def renew_claim(self, key: str, owner: str) -> None:
        """Refresh a held claim's timestamp (no-op when absent).

        Drain loops call this as each group member completes, so a
        lease only goes stale when its holder stops making progress for
        a whole TTL — not merely because the group is large.
        """

    @abc.abstractmethod
    def release_claim(self, key: str) -> None:
        """Release a claim (no-op when absent)."""

    @abc.abstractmethod
    def list_claims(self) -> list[str]:
        """Keys currently under claim, ascending."""

    # ------------------------------------------------------------------
    # Introspection / migration
    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """Artifact counts for ``minim-cdma store ls``."""
        return {
            "backend": self.kind,
            "locator": self.locator,
            "points": len(self.list_points()),
            "manifests": len(self.list_manifests()),
            "series": self.list_series(),
            "tasks": len(self.pending_task_keys()),
            "claims": len(self.list_claims()),
        }

    def migrate_to(self, dst: "ResultsBackend") -> dict:
        """Copy every artifact into ``dst``; returns copy counts."""
        return migrate_store(self, dst)


def migrate_store(src: ResultsBackend, dst: ResultsBackend) -> dict:
    """Copy all points, manifests and series from ``src`` into ``dst``.

    Pending tasks and claims are transient queue state and are *not*
    migrated.  Returns ``{"points": n, "manifests": n, "series": n}``.
    """
    counts = {"points": 0, "manifests": 0, "series": 0}
    for key in src.list_points():
        record = src.load_point_record(key)
        if record is not None:
            dst.save_point_record(key, record)
            counts["points"] += 1
    for sweep_key in src.list_manifests():
        manifest = src.load_manifest(sweep_key)
        if manifest is not None:
            dst.save_manifest(sweep_key, manifest)
            counts["manifests"] += 1
    for experiment_id in src.list_series():
        data = src.load_series_dict(experiment_id)
        if data is not None:
            dst.save_series_dict(experiment_id, data)
            counts["series"] += 1
    return counts


class JsonDirBackend(ResultsBackend):
    """Filesystem-backed results: one JSON file per artifact.

    Layout under ``root``: ``points/<key>.json``,
    ``sweeps/<sweep-key>.json``, ``series/<experiment-id>.json``,
    ``tasks/<key>.json`` and ``claims/<key>.lease``.  All writes go
    through write-then-rename, so concurrent readers (and workers on a
    shared filesystem) never observe partial files.

    Parameters
    ----------
    root:
        Store directory; created on first write.
    """

    kind = "json"

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)

    @property
    def locator(self) -> str:
        """The store directory (re-opens via :func:`open_backend`)."""
        return str(self.root)

    # ------------------------------------------------------------------
    # Point artifacts
    # ------------------------------------------------------------------
    def point_path(self, key: str) -> Path:
        """Where the artifact for ``key`` lives."""
        return self.root / "points" / f"{key}.json"

    def point_locator(self, key: str) -> str:
        """The point artifact's filesystem path."""
        return str(self.point_path(key))

    def load_point_record(self, key: str) -> dict | None:
        """Read one point record, wrapping corrupt JSON with its path."""
        return self._read_json(self.point_path(key), "results artifact")

    def save_point_record(self, key: str, record: dict) -> None:
        """Write one point record atomically."""
        self._write_json(self.point_path(key), record)

    def list_points(self) -> list[str]:
        """Stored point keys, ascending."""
        return sorted(p.stem for p in self.root.glob("points/*.json"))

    # ------------------------------------------------------------------
    # Sweep manifests
    # ------------------------------------------------------------------
    def manifest_path(self, sweep_key: str) -> Path:
        """Where the manifest for ``sweep_key`` lives."""
        return self.root / "sweeps" / f"{sweep_key}.json"

    def save_manifest(self, sweep_key: str, manifest: dict) -> None:
        """Persist a sweep's run manifest."""
        self._write_json(self.manifest_path(sweep_key), manifest)

    def load_manifest(self, sweep_key: str) -> dict | None:
        """The manifest for ``sweep_key``, or ``None`` if absent."""
        return self._read_json(self.manifest_path(sweep_key), "sweep manifest")

    def list_manifests(self) -> list[str]:
        """Stored sweep keys, ascending."""
        return sorted(p.stem for p in self.root.glob("sweeps/*.json"))

    # ------------------------------------------------------------------
    # Assembled series
    # ------------------------------------------------------------------
    def series_path(self, experiment_id: str) -> Path:
        """Where the assembled series for ``experiment_id`` lives."""
        return self.root / "series" / f"{experiment_id}.json"

    def save_series_dict(self, experiment_id: str, data: dict) -> None:
        """Persist one assembled series dict."""
        self._write_json(self.series_path(experiment_id), data)

    def load_series_dict(self, experiment_id: str) -> dict | None:
        """Read one series dict, wrapping corrupt JSON with its path."""
        return self._read_json(self.series_path(experiment_id), "series artifact")

    def list_series(self) -> list[str]:
        """Experiment ids with an assembled series, ascending."""
        return sorted(p.stem for p in self.root.glob("series/*.json"))

    # ------------------------------------------------------------------
    # Worker queue: tasks + claims
    # ------------------------------------------------------------------
    def task_path(self, key: str) -> Path:
        """Where the task descriptor for ``key`` lives."""
        return self.root / "tasks" / f"{key}.json"

    def save_task(self, key: str, payload: dict) -> None:
        """Publish one pending task descriptor."""
        self._write_json(self.task_path(key), payload)

    def load_task(self, key: str) -> dict | None:
        """The pending task descriptor for ``key``, or ``None``."""
        return self._read_json(self.task_path(key), "task descriptor")

    def delete_task(self, key: str) -> None:
        """Remove a task descriptor (idempotent)."""
        self.task_path(key).unlink(missing_ok=True)

    def pending_task_keys(self) -> list[str]:
        """Keys of all published task descriptors, ascending."""
        return sorted(p.stem for p in self.root.glob("tasks/*.json"))

    def claim_path(self, key: str) -> Path:
        """Where the lease file for ``key`` lives."""
        return self.root / "claims" / f"{key}.lease"

    def try_claim(self, key: str, owner: str, *, ttl: float = DEFAULT_CLAIM_TTL) -> bool:
        """Claim via ``O_CREAT|O_EXCL`` lease file; breaks stale leases.

        Creation itself is atomic; only *stale-lease breaking* races.
        After creating a lease the owner is read back and verified,
        which catches a concurrent breaker unlinking our fresh file —
        but two breakers interleaved across the whole break/create
        window can still each see their own name and both win.  Claims
        are therefore a work-dedup lever, not a mutual-exclusion
        guarantee: duplicates stay possible (at-least-once) and stay
        safe, because point saves are idempotent and content-keyed.
        Callers needing hard exclusivity must not build it on leases.
        """
        path = self.claim_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        for attempt in range(2):
            try:
                fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL)
            except FileExistsError:
                if attempt:
                    return False
                try:
                    stale = (time.time() - path.stat().st_mtime) > ttl
                except FileNotFoundError:
                    continue  # holder released between open and stat; retry
                if not stale:
                    return False
                path.unlink(missing_ok=True)  # break the abandoned lease
                continue
            with os.fdopen(fd, "w") as fh:
                json.dump({"owner": owner, "claimed_at": time.time()}, fh)
            return self._claim_owner(path) == owner
        return False  # pragma: no cover - loop always returns

    def _claim_owner(self, path: Path) -> str | None:
        try:
            return json.loads(path.read_text()).get("owner")
        except (FileNotFoundError, json.JSONDecodeError):
            return None

    def renew_claim(self, key: str, owner: str) -> None:
        """Bump the lease mtime while still held by ``owner``."""
        path = self.claim_path(key)
        if self._claim_owner(path) == owner:
            try:
                os.utime(path)
            except FileNotFoundError:  # released concurrently: nothing to renew
                pass

    def release_claim(self, key: str) -> None:
        """Remove the lease file (idempotent)."""
        self.claim_path(key).unlink(missing_ok=True)

    def list_claims(self) -> list[str]:
        """Keys currently under claim, ascending."""
        return sorted(p.stem for p in self.root.glob("claims/*.lease"))

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self) -> "SqliteBackend":
        """Fold this directory store into one SQLite table set, in place.

        Creates ``<root>/store.sqlite`` holding every point, manifest
        and series, then removes the per-artifact JSON files.  Because
        :func:`open_backend` routes a directory containing
        ``store.sqlite`` to :class:`SqliteBackend`, existing
        ``--results <root>`` invocations keep resolving (and resuming)
        transparently after compaction.
        """
        import shutil

        dst = SqliteBackend(self.root / _SQLITE_BASENAME)
        migrate_store(self, dst)
        for sub in ("points", "sweeps", "series", "tasks", "claims"):
            shutil.rmtree(self.root / sub, ignore_errors=True)
        return dst

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _read_json(self, path: Path, what: str) -> dict | None:
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"corrupt {what} {path}: {exc}") from exc

    def _write_json(self, path: Path, payload: Any) -> Path:
        """Write-then-rename so readers never observe partial files."""
        from repro.analysis.series import write_json_atomic

        return write_json_atomic(path, payload)


#: Backwards-compatible alias: the pre-refactor store class name.
ResultsStore = JsonDirBackend


class SqliteBackend(ResultsBackend):
    """Single-file SQLite results store (stdlib ``sqlite3`` only).

    One table per artifact kind (``points`` / ``manifests`` / ``series``
    / ``tasks`` / ``claims``), each a key → JSON-payload row.  Intended
    for 10⁴+-point sweeps where a directory of tiny JSON files stops
    scaling, and as the shared store of multi-process worker drains
    (SQLite's file locking serializes writers; every operation is one
    short transaction on its own connection, so backends are trivially
    picklable across process pools).

    Parameters
    ----------
    path:
        The database file.  A directory is accepted and resolves to
        ``<dir>/store.sqlite`` (the compaction layout).
    """

    kind = "sqlite"

    _TABLES = ("points", "manifests", "series", "tasks")

    def __init__(self, path: Path | str) -> None:
        path = Path(path)
        if path.is_dir() or (not path.exists() and not path.suffix):
            path = path / _SQLITE_BASENAME
        self.path = path
        self._schema_ready = False

    @property
    def locator(self) -> str:
        """The database file path (re-opens via :func:`open_backend`)."""
        return str(self.path)

    @contextmanager
    def _connect(self) -> Iterator[sqlite3.Connection]:
        """One short transaction on a fresh connection (always closed).

        A connection per operation keeps the backend free of open
        handles, hence picklable and safe to share across process pools
        and forked workers; SQLite's file locking (with a 30 s busy
        timeout) serializes concurrent writers.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(self.path, timeout=30.0)
        try:
            if not self._schema_ready:
                # once per backend instance, not per operation: the
                # tables persist in the file, and hot paths (cache
                # probes, drain polls) open thousands of connections
                conn.execute(
                    "CREATE TABLE IF NOT EXISTS artifacts ("
                    " kind TEXT NOT NULL, key TEXT NOT NULL, payload TEXT NOT NULL,"
                    " PRIMARY KEY (kind, key))"
                )
                conn.execute(
                    "CREATE TABLE IF NOT EXISTS claims ("
                    " key TEXT PRIMARY KEY, owner TEXT NOT NULL, claimed_at REAL NOT NULL)"
                )
                self._schema_ready = True
            with conn:  # commit on success, roll back on error
                yield conn
        finally:
            conn.close()

    # -- generic key/JSON rows ------------------------------------------
    def _get(self, kind: str, key: str) -> dict | None:
        with self._connect() as conn:
            row = conn.execute(
                "SELECT payload FROM artifacts WHERE kind = ? AND key = ?", (kind, key)
            ).fetchone()
        if row is None:
            return None
        try:
            return json.loads(row[0])
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"corrupt {kind} row {key!r} in {self.path}: {exc}") from exc

    def _put(self, kind: str, key: str, payload: dict) -> None:
        with self._connect() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO artifacts (kind, key, payload) VALUES (?, ?, ?)",
                (kind, key, json.dumps(payload, sort_keys=True)),
            )

    def _keys(self, kind: str) -> list[str]:
        if not self.path.exists():
            return []
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT key FROM artifacts WHERE kind = ? ORDER BY key", (kind,)
            ).fetchall()
        return [r[0] for r in rows]

    def _delete(self, kind: str, key: str) -> None:
        if not self.path.exists():
            return
        with self._connect() as conn:
            conn.execute("DELETE FROM artifacts WHERE kind = ? AND key = ?", (kind, key))

    # -- points ----------------------------------------------------------
    def load_point_record(self, key: str) -> dict | None:
        """Read one point record row."""
        if not self.path.exists():
            return None
        return self._get("points", key)

    def save_point_record(self, key: str, record: dict) -> None:
        """Upsert one point record row."""
        self._put("points", key, record)

    def list_points(self) -> list[str]:
        """Stored point keys, ascending."""
        return self._keys("points")

    def load_points(self, keys: list[str]) -> dict[str, object]:
        """Bulk point fetch: one ``IN`` query per chunk of 500 keys."""
        if not keys or not self.path.exists():
            return {}
        out: dict[str, object] = {}
        with self._connect() as conn:
            for start in range(0, len(keys), 500):
                chunk = keys[start : start + 500]
                marks = ",".join("?" for _ in chunk)
                rows = conn.execute(
                    "SELECT key, payload FROM artifacts WHERE kind = 'points' "
                    f"AND key IN ({marks})",  # marks is "?,?,..." placeholders only
                    chunk,
                ).fetchall()
                for key, payload in rows:
                    try:
                        out[key] = json.loads(payload)["result"]
                    except (json.JSONDecodeError, KeyError) as exc:
                        raise ConfigurationError(
                            f"corrupt points row {key!r} in {self.path}: {exc}"
                        ) from exc
        return out

    # -- manifests -------------------------------------------------------
    def save_manifest(self, sweep_key: str, manifest: dict) -> None:
        """Upsert a sweep's run manifest row."""
        self._put("manifests", sweep_key, manifest)

    def load_manifest(self, sweep_key: str) -> dict | None:
        """The manifest row for ``sweep_key``, or ``None``."""
        if not self.path.exists():
            return None
        return self._get("manifests", sweep_key)

    def list_manifests(self) -> list[str]:
        """Stored sweep keys, ascending."""
        return self._keys("manifests")

    # -- series ----------------------------------------------------------
    def save_series_dict(self, experiment_id: str, data: dict) -> None:
        """Upsert one assembled series row."""
        self._put("series", experiment_id, data)

    def load_series_dict(self, experiment_id: str) -> dict | None:
        """The stored series dict for ``experiment_id``, or ``None``."""
        if not self.path.exists():
            return None
        return self._get("series", experiment_id)

    def list_series(self) -> list[str]:
        """Experiment ids with an assembled series, ascending."""
        return self._keys("series")

    # -- tasks + claims --------------------------------------------------
    def save_task(self, key: str, payload: dict) -> None:
        """Publish one pending task descriptor row."""
        self._put("tasks", key, payload)

    def load_task(self, key: str) -> dict | None:
        """The pending task descriptor for ``key``, or ``None``."""
        if not self.path.exists():
            return None
        return self._get("tasks", key)

    def delete_task(self, key: str) -> None:
        """Remove a task descriptor row (idempotent)."""
        self._delete("tasks", key)

    def pending_task_keys(self) -> list[str]:
        """Keys of all published task descriptors, ascending."""
        return self._keys("tasks")

    def try_claim(self, key: str, owner: str, *, ttl: float = DEFAULT_CLAIM_TTL) -> bool:
        """Claim via ``INSERT OR IGNORE``; stale rows are purged first."""
        now = time.time()
        with self._connect() as conn:
            conn.execute("DELETE FROM claims WHERE key = ? AND claimed_at < ?", (key, now - ttl))
            cur = conn.execute(
                "INSERT OR IGNORE INTO claims (key, owner, claimed_at) VALUES (?, ?, ?)",
                (key, owner, now),
            )
            return cur.rowcount == 1

    def renew_claim(self, key: str, owner: str) -> None:
        """Bump the claim row's timestamp while still held by ``owner``."""
        if not self.path.exists():
            return
        with self._connect() as conn:
            conn.execute(
                "UPDATE claims SET claimed_at = ? WHERE key = ? AND owner = ?",
                (time.time(), key, owner),
            )

    def release_claim(self, key: str) -> None:
        """Delete the claim row (idempotent)."""
        if not self.path.exists():
            return
        with self._connect() as conn:
            conn.execute("DELETE FROM claims WHERE key = ?", (key,))

    def list_claims(self) -> list[str]:
        """Keys currently under claim, ascending."""
        if not self.path.exists():
            return []
        with self._connect() as conn:
            rows = conn.execute("SELECT key FROM claims ORDER BY key").fetchall()
        return [r[0] for r in rows]

    # -- maintenance -----------------------------------------------------
    def compact(self) -> "SqliteBackend":
        """Reclaim free pages (``VACUUM``); returns self for chaining."""
        with self._connect() as conn:
            conn.execute("VACUUM")
        return self


def open_backend(path: Path | str, kind: str = "auto") -> ResultsBackend:
    """Resolve a path (or backend locator) to a results backend.

    ``kind`` forces ``"json"`` or ``"sqlite"``; the default ``"auto"``
    sniffs: an existing file, a ``.sqlite``/``.sqlite3``/``.db`` suffix,
    or a directory containing ``store.sqlite`` (the compaction layout)
    selects :class:`SqliteBackend`, anything else the JSON directory
    backend.  Workers use this to re-open the orchestrator's store from
    its locator string alone.
    """
    path = Path(path)
    if kind == "json":
        return JsonDirBackend(path)
    if kind == "sqlite":
        return SqliteBackend(path)
    if kind != "auto":
        raise ConfigurationError(
            f"unknown results-backend kind {kind!r} (expected auto/json/sqlite)"
        )
    if path.is_file():
        return SqliteBackend(path)
    if path.suffix in _SQLITE_SUFFIXES:
        return SqliteBackend(path)
    if (path / _SQLITE_BASENAME).exists():
        return SqliteBackend(path / _SQLITE_BASENAME)
    return JsonDirBackend(path)
