"""The sweep execution layer: pluggable executors over task groups.

:func:`repro.sim.sweep.run_sweep` splits a sweep into four stages —
**plan** (resolve every (point, run) into a content-addressed
:class:`TaskGroup`), **claim** (serve cached points from the results
backend), **execute** (this module), **collect** (assemble the series).
The execute stage is pluggable behind the :class:`Executor` protocol:

* :class:`SerialExecutor` — in-process loop (the default);
* :class:`ProcessExecutor` — fan-out across a local process pool via
  :func:`repro.sim.runner.parallel_map`;
* :class:`WorkerExecutor` — publish task descriptors into the shared
  results backend and let any number of ``minim-cdma worker`` processes
  (or hosts sharing the store over a filesystem) claim and drain them,
  with lease-based at-least-once semantics.  The orchestrator drains
  the queue itself too, so a sweep completes even with zero external
  workers.

Every executor runs the same computation kernel on the same serialized
task payloads, so a sweep produces an identical
:class:`~repro.analysis.series.ExperimentSeries` for the same
spec + seed regardless of executor (pinned by
``tests/sim/test_executor.py``).

A :class:`TaskGroup` usually holds one (point, run).  Groups whose
members share a simulation prefix (paired sweeps over axes that leave
the placement draw untouched) hold one run seed's whole point row, and
execution walks the **checkpoint tree** of :mod:`repro.sim.timeline`:
each member's trace is segmented into content-keyed stages (placement
draw → join trace → per-round perturbations), stage boundaries
traversed by more than one member are checkpointed, and every member
forks from the deepest checkpoint on its own chain — byte-equivalent to
a cold rebuild (``tests/sim/test_timeline.py``) and measurably faster
(``minim-cdma bench``).
"""

from __future__ import annotations

import hashlib
import os
import time
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro import obs
from repro.errors import ConfigurationError
from repro.sim.results import DEFAULT_CLAIM_TTL, ResultsBackend, open_backend
from repro.sim.runner import parallel_map
from repro.sim.scenarios import ScenarioSpec, scenario_from_dict
from repro.sim.timeline import compute_group as _compute_group_timeline
from repro.sim.timeline import prefix_token
from repro.topology.digraph import default_core

__all__ = [
    "DEFAULT_QUARANTINE_AFTER",
    "Executor",
    "ProcessExecutor",
    "SerialExecutor",
    "TaskGroup",
    "WorkerExecutor",
    "compute_group",
    "group_from_payload",
    "group_payload",
    "resolve_executor",
    "run_worker",
]

_PAYLOAD_SCHEMA = 1

#: Default lease-break threshold after which a task group is parked in
#: the store's quarantine table instead of being re-claimed (0 disables).
DEFAULT_QUARANTINE_AFTER = 3


# ----------------------------------------------------------------------
# Work units
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TaskGroup:
    """One executable unit of a sweep: one or more points on one seed.

    ``indices[m]`` is the ``(point index, run index)`` of member ``m``,
    ``points[m]`` its fully resolved spec and ``keys[m]`` its
    content-addressed artifact key.  All members share ``seed`` (a
    group either holds a single (point, run) or one run seed's whole
    shared-prefix point row).  ``stage_tokens[m]`` is member ``m``'s
    plan-time placement-prefix token
    (:func:`repro.sim.timeline.prefix_token`) — equal tokens are why
    the members were grouped, and the tokens travel in worker
    descriptors so any drain can see the intended sharing.  With
    ``warm`` execution walks the checkpoint tree of
    :mod:`repro.sim.timeline`, resuming each member from the deepest
    stage checkpoint its content-key chain hits.
    """

    indices: tuple[tuple[int, int], ...]
    points: tuple[ScenarioSpec, ...]
    seed: np.random.SeedSequence
    keys: tuple[str, ...]
    contexts: tuple[dict, ...]
    warm: bool = False
    stage_tokens: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not (len(self.indices) == len(self.points) == len(self.keys) == len(self.contexts)):
            raise ConfigurationError("TaskGroup member tuples must be parallel")
        if self.stage_tokens and len(self.stage_tokens) != len(self.indices):
            raise ConfigurationError("TaskGroup stage_tokens must parallel the members")
        if not self.indices:
            raise ConfigurationError("TaskGroup needs at least one member")

    def subset(self, members: Sequence[int]) -> "TaskGroup":
        """The group restricted to the given member positions.

        The shrink primitive of the claim stage and incremental planning:
        all parallel member tuples shrink together, the shared seed and
        the warm flag survive (a shrunken warm group still shares the
        prefix among whatever remains).
        """
        from dataclasses import replace

        tokens = tuple(self.stage_tokens[m] for m in members) if self.stage_tokens else ()
        return replace(
            self,
            indices=tuple(self.indices[m] for m in members),
            points=tuple(self.points[m] for m in members),
            keys=tuple(self.keys[m] for m in members),
            contexts=tuple(self.contexts[m] for m in members),
            stage_tokens=tokens,
        )

    @property
    def key(self) -> str:
        """Content-addressed identity of the whole group.

        Singleton groups reuse their member's point key; larger groups
        hash the member keys, so the same pending work always maps to
        the same queue slot.
        """
        if len(self.keys) == 1:
            return self.keys[0]
        digest = hashlib.sha256("+".join(self.keys).encode()).hexdigest()[:20]
        return f"grp-{digest}"


def group_payload(group: TaskGroup) -> dict:
    """The JSON-able task descriptor of a group (worker-queue wire format).

    Self-contained: resolved point specs (``dataclasses.asdict`` trees)
    plus the seed's derivation identity (entropy + spawn key), so any
    worker process can recompute the group from the descriptor alone.
    """
    import dataclasses

    return {
        "schema": _PAYLOAD_SCHEMA,
        "indices": [list(ix) for ix in group.indices],
        "points": [dataclasses.asdict(p) for p in group.points],
        "seed": {"entropy": group.seed.entropy, "spawn_key": list(group.seed.spawn_key)},
        "keys": list(group.keys),
        "contexts": list(group.contexts),
        "warm": group.warm,
        "stage_tokens": list(group.stage_tokens),
    }


def group_from_payload(payload: dict) -> TaskGroup:
    """Rebuild a :class:`TaskGroup` from :func:`group_payload` output."""
    schema = payload.get("schema")
    if schema != _PAYLOAD_SCHEMA:
        raise ConfigurationError(
            f"unsupported task-descriptor schema {schema!r} (this worker speaks "
            f"{_PAYLOAD_SCHEMA}; upgrade the older side)"
        )
    try:
        seed = np.random.SeedSequence(
            entropy=payload["seed"]["entropy"],
            spawn_key=tuple(payload["seed"]["spawn_key"]),
        )
        points = tuple(scenario_from_dict(p) for p in payload["points"])
        # older descriptors carry no tokens; recompute from the specs
        tokens = payload.get("stage_tokens") or (prefix_token(p, seed) for p in points)
        return TaskGroup(
            indices=tuple((int(i), int(r)) for i, r in payload["indices"]),
            points=points,
            seed=seed,
            keys=tuple(payload["keys"]),
            contexts=tuple(payload["contexts"]),
            warm=bool(payload.get("warm", False)),
            stage_tokens=tuple(tokens),
        )
    except (KeyError, TypeError) as exc:
        raise ConfigurationError(f"malformed task descriptor: {exc}") from exc


# ----------------------------------------------------------------------
# Computation kernel (runs in orchestrators, pool processes and workers)
# ----------------------------------------------------------------------
def _ckpt_scope(backend: "ResultsBackend | None", group: "TaskGroup"):
    """The checkpoint write-through scope for one group, or ``None``.

    Store-backed checkpointing defaults **on** whenever a results
    backend is present and the group is warm (cold groups and
    singletons never serialize boundaries); ``REPRO_CKPT_STORE=0``
    turns it off fleet-wide.  Links are stamped with the group's point
    keys so ``store gc`` can tie them back to live sweep manifests.
    """
    if backend is None or not group.warm:
        return None
    if os.environ.get("REPRO_CKPT_STORE", "").strip().lower() in ("0", "off", "false", "no"):
        return None
    from repro.sim.results import CheckpointScope

    return CheckpointScope(backend, points=group.keys)


def compute_group(group: TaskGroup, on_member=None, store=None) -> list[list]:
    """Compute every member of a group; returns results in member order.

    The execute-stage kernel every executor (and worker drain) runs:
    delegate to the timeline walker of :mod:`repro.sim.timeline`.  Warm
    groups share stage checkpoints along their members' content-key
    chains (placement/join prefix, and any perturbation rounds whose
    keys coincide); non-warm groups and singletons replay cold.  Because
    stage keys are content-derived, a member whose trace diverges (a
    sweep axis that turned out to affect placement after all) shares
    nothing and recomputes from scratch — sharing can never change
    results, only skip redundant work.

    ``on_member(index, result)``, when given, fires after each member
    completes — the hook drain loops use to persist points and renew
    their lease incrementally instead of once at the end.

    ``store`` (a :class:`~repro.sim.results.CheckpointScope`) makes the
    walk's checkpoint tree store-backed: stage boundaries are written
    through as delta-chain links and resume consults the table, so a
    boundary some *other* process or host already walked is applied
    instead of replayed.

    This is the single choke point every executor funnels through, so
    the per-task trace span lives here: one ``task.compute`` span per
    group, in whichever process ran it.
    """
    with obs.span(
        "task.compute", cat="executor", key=group.key, members=len(group.indices), warm=group.warm
    ):
        return _compute_group_timeline(
            group.points, group.seed, share=group.warm, on_member=on_member, store=store
        )


def _provenance(context: dict, worker: str) -> dict:
    """Stamp execution provenance onto a planned task context.

    Adds *who* computed the point, *when* it landed, and which conflict
    core (``array`` / ``dict`` / ``dense``) the executing process ran —
    the cores are byte-identical by contract, so the stamp is an audit
    trail for that claim, not a result discriminator.  The monitor's
    per-worker throughput view and ``store export`` read these back; the
    planned part of the context (scenario, sweep value, run, seed) stays
    untouched, so point keys and results are unaffected.
    """
    return {**context, "worker": worker, "saved_at": time.time(), "core": default_core()}


def _claimed_compute(
    backend: ResultsBackend, group: TaskGroup, gkey: str, owner: str
) -> list[list]:
    """Compute a claimed group, persisting and renewing as members land.

    Each member's point is saved the moment it completes and the group's
    lease is renewed, so long groups (a warm run row under a slow
    strategy) neither lose finished work on a crash nor go stale and get
    re-claimed by an idle peer mid-computation.
    """

    def landed(m: int, out: list) -> None:
        backend.save_point(group.keys[m], out, context=_provenance(group.contexts[m], owner))
        backend.renew_claim(gkey, owner)
        obs.event("queue.lease_renew", cat="queue", key=gkey, owner=owner)

    outs = compute_group(group, on_member=landed, store=_ckpt_scope(backend, group))
    obs.flush_metrics()  # snapshot survives even if this claimant dies next
    return outs


def _execute_group_task(args: tuple) -> list[list]:
    """Module-level pool target: recompute one group from its payload.

    Each member's result is persisted *here*, in the executing process,
    the moment it completes — so every finished point of a
    partially-computed warm group survives an interrupted sweep (resume
    recovers it even if the orchestrator never returns from the
    fan-out).
    """
    payload, locator = args
    group = group_from_payload(payload)
    if locator is None:
        outs = compute_group(group)
        obs.flush_metrics()  # pool workers may be torn down without atexit
        return outs
    backend = _reopen(locator)
    worker = f"proc-{os.getpid()}"

    def landed(m: int, out: list) -> None:
        backend.save_point(group.keys[m], out, context=_provenance(group.contexts[m], worker))

    outs = compute_group(group, on_member=landed, store=_ckpt_scope(backend, group))
    obs.flush_metrics()  # pool workers may be torn down without atexit
    return outs


def _reopen(locator: tuple[str, str]) -> ResultsBackend:
    """Re-open the orchestrator's backend in a child process.

    The locator carries the backend *kind* alongside the path, so a
    forced kind (``open_backend(path, "json")`` on a ``.sqlite``-named
    directory, say) survives the round trip instead of being re-sniffed
    into the wrong backend.
    """
    path, kind = locator
    return open_backend(path, kind)


def _locator_of(backend: ResultsBackend | None) -> tuple[str, str] | None:
    return None if backend is None else (backend.locator, backend.kind)


def _collect(groups: Sequence[TaskGroup], outs_per_group) -> dict[tuple[int, int], list]:
    results: dict[tuple[int, int], list] = {}
    for group, outs in zip(groups, outs_per_group):
        results.update(zip(group.indices, outs))
    return results


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------
@runtime_checkable
class Executor(Protocol):
    """The execute-stage contract of the sweep pipeline.

    ``execute`` receives the pending (non-cached) task groups and the
    results backend (``None`` for store-less sweeps) and returns a
    result per ``(point index, run index)``.  Implementations must
    persist computed points to the backend as they land and must return
    results identical to a serial in-process computation.  With
    ``resume=False`` every given group must be *computed*, never served
    from artifacts that happen to pre-exist in the backend.
    """

    #: Executor name recorded in sweep manifests.
    name: str

    def execute(
        self,
        groups: Sequence[TaskGroup],
        *,
        backend: ResultsBackend | None,
        resume: bool = True,
    ) -> dict[tuple[int, int], list]:
        """Compute all groups; return ``{(point, run): result}``."""
        ...  # pragma: no cover - protocol


class SerialExecutor:
    """Compute every group in-process, in order (the default)."""

    name = "serial"

    def execute(
        self,
        groups: Sequence[TaskGroup],
        *,
        backend: ResultsBackend | None,
        resume: bool = True,
    ) -> dict[tuple[int, int], list]:
        """Run each group through the shared payload round-trip, serially."""
        locator = _locator_of(backend)
        outs = [_execute_group_task((group_payload(g), locator)) for g in groups]
        return _collect(groups, outs)


class ProcessExecutor:
    """Fan groups out across a local process pool.

    Parameters
    ----------
    processes:
        Pool size; ``None``/``0``/``1`` degrade to serial execution
        (matching :func:`repro.sim.runner.parallel_map`).
    """

    name = "process"

    def __init__(self, processes: int | None = None) -> None:
        self.processes = processes

    def execute(
        self,
        groups: Sequence[TaskGroup],
        *,
        backend: ResultsBackend | None,
        resume: bool = True,
    ) -> dict[tuple[int, int], list]:
        """Map groups over the pool; order (and results) are deterministic."""
        locator = _locator_of(backend)
        tasks = [(group_payload(g), locator) for g in groups]
        outs = parallel_map(_execute_group_task, tasks, processes=self.processes)
        return _collect(groups, outs)


class WorkerExecutor:
    """Drain a sweep through the shared store's task queue.

    ``execute`` publishes every pending group as a task descriptor in
    the results backend, then participates in the drain itself: it
    repeatedly claims unowned tasks (lease files / lease rows with a
    TTL) and computes them, while collecting points that external
    ``minim-cdma worker`` processes save concurrently.  Any number of
    workers — other processes, other hosts sharing the store — can join
    and leave at any time; abandoned leases expire after ``claim_ttl``
    seconds and are re-claimed, giving at-least-once completion.

    Parameters
    ----------
    poll:
        Seconds between queue scans while waiting on external workers.
    claim_ttl:
        Lease lifetime; a claim older than this counts as abandoned.
    drain:
        When ``False`` the orchestrator only publishes and waits —
        useful to measure pure worker throughput; requires at least one
        external worker to make progress.
    max_wait:
        Upper bound on waiting *without any progress* before the sweep
        errors out (the deadline resets every time a group completes).
    quarantine_after:
        Park a group in the store's quarantine table once its lease has
        been broken this many times (a broken lease means a claimant
        died mid-computation, so repeated breaks mark a poison task).
        The sweep then fails loudly instead of feeding the group to
        workers forever; ``minim-cdma store requeue`` releases it after
        inspection.  ``<= 0`` disables quarantining.
    """

    name = "worker"

    def __init__(
        self,
        *,
        poll: float = 0.1,
        claim_ttl: float = DEFAULT_CLAIM_TTL,
        drain: bool = True,
        max_wait: float = 600.0,
        quarantine_after: int = DEFAULT_QUARANTINE_AFTER,
    ) -> None:
        self.poll = poll
        self.claim_ttl = claim_ttl
        self.drain = drain
        self.max_wait = max_wait
        self.quarantine_after = quarantine_after

    def execute(
        self,
        groups: Sequence[TaskGroup],
        *,
        backend: ResultsBackend | None,
        resume: bool = True,
    ) -> dict[tuple[int, int], list]:
        """Publish groups to the store queue and drain until complete.

        With ``resume=False`` pre-existing artifacts must not satisfy
        the sweep, so the queue protocol (whose completion signal *is*
        "the points exist") cannot be used: the orchestrator computes
        every group itself, overwriting stale artifacts — same results,
        honest recomputation.
        """
        if backend is None:
            raise ConfigurationError(
                "WorkerExecutor needs a results store (run_sweep(..., store=...)): "
                "the store is the queue workers share"
            )
        owner = f"orchestrator-{os.getpid()}"
        if not resume:
            outs = [_claimed_compute(backend, g, g.key, owner) for g in groups]
            return _collect(groups, outs)
        for group in groups:
            backend.save_task(group.key, group_payload(group))
        missing = {group.key: group for group in groups}
        results: dict[tuple[int, int], list] = {}
        deadline = time.monotonic() + self.max_wait
        last_present = -1
        beat = _HeartbeatClock(self.claim_ttl)
        while missing:
            progressed = False
            beat.maybe_beat(backend, owner)
            # one batched probe per poll: completed members of every
            # still-missing group (cheap on SQLite's bulk path)
            present = backend.load_points([k for g in missing.values() for k in g.keys])
            for gkey, group in list(missing.items()):
                outs: list[list] | None = None
                if all(key in present for key in group.keys):
                    outs = [present[key] for key in group.keys]
                elif self.drain and not _maybe_quarantine(
                    backend, gkey, self.quarantine_after, claim_ttl=self.claim_ttl
                ):
                    if backend.try_claim(gkey, owner, ttl=self.claim_ttl):
                        obs.event("queue.claim", cat="queue", key=gkey, owner=owner)
                        try:
                            # Double-check under the claim (a worker may
                            # have landed the points since the probe).
                            outs = _load_group_points(backend, group)
                            if outs is None:
                                outs = _claimed_compute(backend, group, gkey, owner)
                        finally:
                            backend.release_claim(gkey)
                if outs is not None:
                    backend.delete_task(gkey)
                    results.update(zip(group.indices, outs))
                    del missing[gkey]
                    progressed = True
            # checked *after* the serve pass, so a parked group whose
            # points all landed anyway still completes the sweep
            parked = sorted(set(backend.list_quarantined()) & set(missing))
            if parked:
                # a group this sweep still needs was parked (by us or by
                # an external worker): fail loudly, point at the lever
                raise ConfigurationError(
                    f"{len(parked)} task group(s) quarantined after repeated lease "
                    f"breaks: {', '.join(parked[:3])}"
                    f"{', …' if len(parked) > 3 else ''} — inspect with "
                    f"`minim-cdma store stats {backend.locator}` and release with "
                    f"`minim-cdma store requeue {backend.locator}`"
                )
            if progressed or len(present) != last_present:
                # max_wait bounds time *without progress* — and progress
                # includes individual members landed by a worker still
                # mid-group, so a long healthy drain never trips the
                # stall detector while leases keep renewing
                deadline = time.monotonic() + self.max_wait
            last_present = len(present)
            if missing and not progressed:
                if time.monotonic() > deadline:
                    raise ConfigurationError(
                        f"worker sweep stalled: {len(missing)} task(s) incomplete after "
                        f"{self.max_wait:.0f}s (are any workers draining {backend.locator}?)"
                    )
                time.sleep(self.poll)
        return results


def _load_group_points(backend: ResultsBackend, group: TaskGroup) -> list[list] | None:
    """All member results if every one is stored, else ``None``."""
    outs: list[list] = []
    for key in group.keys:
        out = backend.load_point(key)
        if out is None:
            return None
        outs.append(out)
    return outs


def _maybe_quarantine(
    backend: ResultsBackend,
    gkey: str,
    quarantine_after: int,
    *,
    claim_ttl: float = DEFAULT_CLAIM_TTL,
) -> bool:
    """Park ``gkey`` when its lease-break count crossed the threshold.

    Returns ``True`` when the task is (now) quarantined and must not be
    claimed.  Shared by the worker loop and the orchestrator's drain so
    every claimant applies the same poison-task policy.  A threshold
    ``<= 0`` disables quarantining entirely.

    A task holding a *fresh* lease (younger than ``claim_ttl``) is never
    parked: its breaks necessarily count previous holders, and the
    current claimant is still making progress — quarantining would yank
    a live computation's claim.  This check-then-park window is
    best-effort, not atomic; a lost race only re-exposes the task to
    the at-least-once machinery, which stays safe because point saves
    are idempotent.
    """
    if quarantine_after <= 0:
        return False
    breaks = backend.lease_breaks(gkey)
    if breaks < quarantine_after:
        return False
    age = backend.claim_age(gkey)
    if age is not None and age <= claim_ttl:
        return False
    backend.quarantine_task(gkey, reason=f"{breaks} broken leases")
    obs.event("queue.quarantine", cat="queue", key=gkey, breaks=breaks)
    return True


class _HeartbeatClock:
    """Rate-limits worker heartbeats to a fraction of the lease TTL.

    A beat both stamps the store (so ``store stats``/``watch`` can flag
    a worker whose last beat is older than the TTL) and emits a trace
    event.  One third of the TTL keeps a healthy worker comfortably
    inside the staleness window across scheduling jitter.
    """

    def __init__(self, claim_ttl: float) -> None:
        self.every = max(claim_ttl / 3.0, 0.05)
        self._last: float | None = None

    def maybe_beat(self, backend: ResultsBackend, owner: str) -> None:
        now = time.monotonic()
        if self._last is not None and now - self._last < self.every:
            return
        self._last = now
        backend.record_heartbeat(owner)
        obs.event("worker.heartbeat", cat="worker", owner=owner)


# ----------------------------------------------------------------------
# The worker loop (``minim-cdma worker``)
# ----------------------------------------------------------------------
def run_worker(
    backend: ResultsBackend,
    *,
    poll: float = 0.2,
    max_idle: float = 10.0,
    claim_ttl: float = DEFAULT_CLAIM_TTL,
    once: bool = False,
    owner: str | None = None,
    quarantine_after: int = DEFAULT_QUARANTINE_AFTER,
) -> int:
    """Drain published task groups from a shared results backend.

    The loop of a ``minim-cdma worker`` process: scan the queue, claim
    an unowned task, recompute it from its descriptor, persist the
    member points, delete the task, release the claim.  Tasks whose
    points already exist (computed by a faster peer) are cleaned up
    without recomputation.  Poison tasks are *parked*, not retried
    forever: an undecodable descriptor (wrong schema, tampered payload)
    is quarantined immediately, and a task whose lease has been broken
    ``quarantine_after`` times (every break is a claimant that died
    mid-computation) is quarantined instead of claimed — one poison
    task must not grind down the whole fleet.  ``minim-cdma store
    requeue`` releases quarantined tasks after inspection;
    ``quarantine_after <= 0`` disables churn-based parking.  The loop
    stamps a heartbeat into the store every third of ``claim_ttl`` so
    the monitor can flag silently dead workers.  Returns the number of
    groups this worker computed; exits after ``max_idle`` seconds
    without finding work (or after one scan with ``once``).
    """
    owner = owner or f"worker-{os.getpid()}"
    computed = 0
    idle_since: float | None = None
    beat = _HeartbeatClock(claim_ttl)
    while True:
        worked = False
        beat.maybe_beat(backend, owner)
        for gkey in backend.pending_task_keys():
            payload = backend.load_task(gkey)
            if payload is None:
                continue  # finished (and deleted) by a peer mid-scan
            try:
                group = group_from_payload(payload)
            except ConfigurationError as exc:
                backend.quarantine_task(gkey, reason=f"undecodable descriptor: {exc}")
                print(f"worker: quarantined undecodable task {gkey}: {exc}")
                worked = True
                continue
            if _load_group_points(backend, group) is not None:
                # completed work is cleaned up, never quarantined — a
                # claimant that saved every point but died before
                # delete_task must not look like poison
                backend.delete_task(gkey)
                worked = True
                continue
            if _maybe_quarantine(backend, gkey, quarantine_after, claim_ttl=claim_ttl):
                print(
                    f"worker: quarantined task {gkey} after "
                    f"{backend.lease_breaks(gkey)} broken leases"
                )
                worked = True
                continue
            if not backend.try_claim(gkey, owner, ttl=claim_ttl):
                continue
            obs.event("queue.claim", cat="queue", key=gkey, owner=owner)
            beat.maybe_beat(backend, owner)
            try:
                # Double-check under the claim: a peer may have finished
                # between the scan and the claim (shrinks, but cannot
                # close, the at-least-once duplicate window).
                if _load_group_points(backend, group) is None:
                    _claimed_compute(backend, group, gkey, owner)
                    computed += 1
                backend.delete_task(gkey)
            finally:
                backend.release_claim(gkey)
            worked = True
        if once:
            return computed
        now = time.monotonic()
        if worked:
            idle_since = None
            continue
        if idle_since is None:
            idle_since = now
        elif now - idle_since >= max_idle:
            return computed
        time.sleep(poll)


# ----------------------------------------------------------------------
# Resolution
# ----------------------------------------------------------------------
_EXECUTOR_NAMES = ("serial", "process", "worker")


def resolve_executor(executor: "Executor | str | None", processes: int | None) -> "Executor":
    """Resolve the ``executor``/``processes`` arguments to an instance.

    ``None`` keeps the historical behavior: a process pool when
    ``processes`` asks for one, else serial.  Strings name the built-in
    executors; instances pass through.  Asking for ``"process"``
    without a pool size means "use the machine": it defaults to the CPU
    count rather than silently degrading to a serial loop.
    """
    if executor is None:
        if processes and processes > 1:
            return ProcessExecutor(processes)
        return SerialExecutor()
    if isinstance(executor, str):
        if executor == "serial":
            return SerialExecutor()
        if executor == "process":
            return ProcessExecutor(processes if processes is not None else os.cpu_count())
        if executor == "worker":
            return WorkerExecutor()
        raise ConfigurationError(
            f"unknown executor {executor!r} (expected one of {_EXECUTOR_NAMES})"
        )
    if isinstance(executor, Executor):
        return executor
    raise ConfigurationError(f"not an executor: {executor!r}")
