"""Random network generation (paper section 5).

"These experiments were carried out on random ad-hoc networks generated
on a 2 dimensional space 100 units x 100 units square"; positions are
uniform over the square and transmission ranges uniform in
``(minr, maxr)``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.topology.node import NodeConfig

__all__ = ["sample_configs", "DEFAULT_AREA", "DEFAULT_MIN_RANGE", "DEFAULT_MAX_RANGE"]

#: The paper's arena: a 100 x 100 square.
DEFAULT_AREA: tuple[float, float] = (100.0, 100.0)
#: Default range interval used by Fig 10(a-c), Fig 11 and Fig 12.
DEFAULT_MIN_RANGE = 20.5
DEFAULT_MAX_RANGE = 30.5


def sample_configs(
    n: int,
    rng: np.random.Generator,
    *,
    area: tuple[float, float] = DEFAULT_AREA,
    min_range: float = DEFAULT_MIN_RANGE,
    max_range: float = DEFAULT_MAX_RANGE,
    id_start: int = 1,
) -> list[NodeConfig]:
    """Sample ``n`` node configurations per the paper's generator.

    Ids are consecutive starting at ``id_start`` (1 by default, matching
    the paper's 1-based node numbering).
    """
    if n < 0:
        raise ConfigurationError(f"n must be non-negative, got {n}")
    if not (0 < min_range <= max_range):
        raise ConfigurationError(
            f"need 0 < min_range <= max_range, got ({min_range}, {max_range})"
        )
    width, height = area
    if width <= 0 or height <= 0:
        raise ConfigurationError(f"area must be positive, got {area}")
    xs = rng.uniform(0.0, width, size=n)
    ys = rng.uniform(0.0, height, size=n)
    ranges = rng.uniform(min_range, max_range, size=n)
    return [
        NodeConfig(id_start + i, float(xs[i]), float(ys[i]), float(ranges[i]))
        for i in range(n)
    ]
