"""Workload generators for the paper's three experiments.

A workload is a list of events.  Workloads are generated once per run
and replayed against every strategy's network, so all strategies see
byte-identical event sequences.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.events.base import JoinEvent, MoveEvent, PowerChangeEvent
from repro.topology.node import NodeConfig

__all__ = ["join_workload", "power_raise_workload", "movement_rounds"]


def join_workload(configs: Sequence[NodeConfig]) -> list[JoinEvent]:
    """Sequential joins of ``configs`` in order (experiment 5.1)."""
    return [JoinEvent(cfg) for cfg in configs]


def power_raise_workload(
    configs: Sequence[NodeConfig],
    raisefactor: float,
    rng: np.random.Generator,
    *,
    fraction: float = 0.5,
) -> list[PowerChangeEvent]:
    """Range increases for a random ``fraction`` of nodes (experiment 5.2).

    "half of the N nodes in the ad-hoc network were randomly chosen and
    their power ranges increased by a factor of raisefactor."  Events
    come in the sampled (random) order.
    """
    if raisefactor < 1.0:
        raise ConfigurationError(f"raisefactor must be >= 1, got {raisefactor}")
    if not (0.0 <= fraction <= 1.0):
        raise ConfigurationError(f"fraction must be in [0, 1], got {fraction}")
    k = int(len(configs) * fraction)
    chosen = rng.choice(len(configs), size=k, replace=False)
    return [
        PowerChangeEvent(configs[int(i)].node_id, configs[int(i)].tx_range * raisefactor)
        for i in chosen
    ]


def movement_rounds(
    configs: Sequence[NodeConfig],
    rounds: int,
    maxdisp: float,
    rng: np.random.Generator,
    *,
    area: tuple[float, float] = (100.0, 100.0),
) -> list[list[MoveEvent]]:
    """``rounds`` rounds of node movement (experiment 5.3).

    Each round moves every node once, in ascending id order, "in a
    random direction in the x-y plane by a displacement chosen uniformly
    in the interval [0, maxdisp]".  Positions evolve across rounds
    (round ``t+1`` displaces from round ``t``'s position) and are
    clamped to the simulation area.
    """
    if rounds < 0:
        raise ConfigurationError(f"rounds must be non-negative, got {rounds}")
    if maxdisp < 0:
        raise ConfigurationError(f"maxdisp must be non-negative, got {maxdisp}")
    ordered = sorted(configs, key=lambda c: c.node_id)
    pos = {c.node_id: (c.x, c.y) for c in ordered}
    width, height = area
    out: list[list[MoveEvent]] = []
    for _ in range(rounds):
        round_events: list[MoveEvent] = []
        for cfg in ordered:
            theta = rng.uniform(0.0, 2.0 * np.pi)
            disp = rng.uniform(0.0, maxdisp)
            x0, y0 = pos[cfg.node_id]
            x = min(max(x0 + disp * np.cos(theta), 0.0), width)
            y = min(max(y0 + disp * np.sin(theta), 0.0), height)
            pos[cfg.node_id] = (x, y)
            round_events.append(MoveEvent(cfg.node_id, float(x), float(y)))
        out.append(round_events)
    return out
