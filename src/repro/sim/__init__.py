"""Simulation harness: networks, workloads, scenarios and experiments."""

from repro.sim.metrics import EventRecord, MetricsCollector, MetricsSnapshot
from repro.sim.network import AdHocNetwork
from repro.sim.random_networks import sample_configs
from repro.sim.registry import available_scenarios, get_scenario, register_scenario
from repro.sim.rng import rng_from, spawn_seeds
from repro.sim.scenarios import (
    ChurnSpec,
    MobilitySpec,
    PlacementSpec,
    PowerSpec,
    ScenarioSpec,
    run_scenario,
    scenario_trace,
)
from repro.sim.workloads import (
    join_workload,
    movement_rounds,
    power_raise_workload,
)

__all__ = [
    "AdHocNetwork",
    "ChurnSpec",
    "EventRecord",
    "MetricsCollector",
    "MetricsSnapshot",
    "MobilitySpec",
    "PlacementSpec",
    "PowerSpec",
    "ScenarioSpec",
    "available_scenarios",
    "get_scenario",
    "join_workload",
    "movement_rounds",
    "power_raise_workload",
    "register_scenario",
    "rng_from",
    "run_scenario",
    "sample_configs",
    "scenario_trace",
    "spawn_seeds",
]
