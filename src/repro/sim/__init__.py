"""Simulation harness: networks, workloads, scenarios and experiments."""

from repro.sim.metrics import EventRecord, MetricsCollector, MetricsSnapshot
from repro.sim.network import AdHocNetwork, MultiStrategyReplay, StrategyLane
from repro.sim.random_networks import sample_configs
from repro.sim.registry import available_scenarios, get_scenario, register_scenario
from repro.sim.results import ResultsStore
from repro.sim.rng import rng_from, spawn_seeds
from repro.sim.scenarios import (
    ChurnSpec,
    MobilitySpec,
    PlacementSpec,
    PowerSpec,
    ScenarioSpec,
    TracePhases,
    run_scenario,
    scenario_phases,
    scenario_trace,
)
from repro.sim.sweep import SweepSpec, build_sweep, run_sweep
from repro.sim.workloads import (
    join_workload,
    movement_rounds,
    power_raise_workload,
)

__all__ = [
    "AdHocNetwork",
    "ChurnSpec",
    "EventRecord",
    "MetricsCollector",
    "MetricsSnapshot",
    "MobilitySpec",
    "MultiStrategyReplay",
    "PlacementSpec",
    "PowerSpec",
    "ResultsStore",
    "ScenarioSpec",
    "StrategyLane",
    "SweepSpec",
    "TracePhases",
    "available_scenarios",
    "build_sweep",
    "get_scenario",
    "join_workload",
    "movement_rounds",
    "power_raise_workload",
    "register_scenario",
    "rng_from",
    "run_scenario",
    "run_sweep",
    "sample_configs",
    "scenario_phases",
    "scenario_trace",
    "spawn_seeds",
]
