"""Simulation harness: networks, workloads, scenarios and experiments."""

from repro.sim.control import PrecisionTarget, RunController, resolve_precision
from repro.sim.executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    TaskGroup,
    WorkerExecutor,
    run_worker,
)
from repro.sim.metrics import EventRecord, MetricsCollector, MetricsSnapshot
from repro.sim.monitor import StoreMonitor, StoreStats, export_csv
from repro.sim.network import AdHocNetwork, MultiStrategyReplay, StrategyLane
from repro.sim.random_networks import sample_configs
from repro.sim.registry import available_scenarios, get_scenario, register_scenario
from repro.sim.results import (
    JsonDirBackend,
    ResultsBackend,
    ResultsStore,
    SqliteBackend,
    migrate_store,
    open_backend,
)
from repro.sim.rng import rng_from, spawn_seeds
from repro.sim.scenarios import (
    ChurnSpec,
    MobilitySpec,
    PlacementSpec,
    PowerSpec,
    ScenarioSpec,
    TracePhases,
    run_scenario,
    scenario_phases,
    scenario_trace,
)
from repro.sim.sweep import (
    SweepSpec,
    build_sweep,
    plan_additional_tasks,
    plan_tasks,
    run_sweep,
)
from repro.sim.timeline import (
    CheckpointTree,
    Stage,
    TracePlan,
    build_plan,
    prefix_token,
)
from repro.sim.workloads import (
    join_workload,
    movement_rounds,
    power_raise_workload,
)

__all__ = [
    "AdHocNetwork",
    "CheckpointTree",
    "ChurnSpec",
    "EventRecord",
    "Executor",
    "JsonDirBackend",
    "MetricsCollector",
    "MetricsSnapshot",
    "MobilitySpec",
    "MultiStrategyReplay",
    "PlacementSpec",
    "PowerSpec",
    "PrecisionTarget",
    "ProcessExecutor",
    "ResultsBackend",
    "ResultsStore",
    "RunController",
    "ScenarioSpec",
    "SerialExecutor",
    "SqliteBackend",
    "Stage",
    "StoreMonitor",
    "StoreStats",
    "StrategyLane",
    "SweepSpec",
    "TaskGroup",
    "TracePhases",
    "TracePlan",
    "WorkerExecutor",
    "available_scenarios",
    "build_plan",
    "build_sweep",
    "export_csv",
    "get_scenario",
    "join_workload",
    "migrate_store",
    "movement_rounds",
    "open_backend",
    "plan_additional_tasks",
    "plan_tasks",
    "power_raise_workload",
    "prefix_token",
    "register_scenario",
    "resolve_precision",
    "rng_from",
    "run_scenario",
    "run_sweep",
    "run_worker",
    "sample_configs",
    "scenario_phases",
    "scenario_trace",
    "spawn_seeds",
]
