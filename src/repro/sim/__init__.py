"""Simulation harness: networks, workloads, and the paper's experiments."""

from repro.sim.metrics import EventRecord, MetricsCollector, MetricsSnapshot
from repro.sim.network import AdHocNetwork
from repro.sim.random_networks import sample_configs
from repro.sim.rng import rng_from, spawn_seeds
from repro.sim.workloads import (
    join_workload,
    movement_rounds,
    power_raise_workload,
)

__all__ = [
    "AdHocNetwork",
    "EventRecord",
    "MetricsCollector",
    "MetricsSnapshot",
    "join_workload",
    "movement_rounds",
    "power_raise_workload",
    "rng_from",
    "sample_configs",
    "spawn_seeds",
]
