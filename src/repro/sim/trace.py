"""Event-trace serialization: save, load and replay workloads.

Reproducibility plumbing: any event sequence (generated workloads,
mobility traces, hand-written scenarios) can be written to JSON and
replayed later against any strategy, so experiments can be archived and
re-examined without re-rolling RNG state.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.errors import ConfigurationError
from repro.events.base import Event, JoinEvent, LeaveEvent, MoveEvent, PowerChangeEvent
from repro.sim.network import AdHocNetwork
from repro.strategies.base import RecodeResult
from repro.topology.node import NodeConfig

__all__ = ["event_to_dict", "event_from_dict", "save_trace", "load_trace", "replay"]

_FORMAT_VERSION = 1


def event_to_dict(event: Event) -> dict:
    """Serialize one event to a plain JSON-able dict."""
    if isinstance(event, JoinEvent):
        c = event.config
        return {
            "kind": "join",
            "node": c.node_id,
            "x": c.x,
            "y": c.y,
            "tx_range": c.tx_range,
        }
    if isinstance(event, LeaveEvent):
        return {"kind": "leave", "node": event.node_id}
    if isinstance(event, MoveEvent):
        return {"kind": "move", "node": event.node_id, "x": event.x, "y": event.y}
    if isinstance(event, PowerChangeEvent):
        return {"kind": "power", "node": event.node_id, "new_range": event.new_range}
    raise ConfigurationError(f"unknown event type {type(event).__name__}")


def event_from_dict(data: dict) -> Event:
    """Deserialize one event."""
    kind = data.get("kind")
    if kind == "join":
        return JoinEvent(
            NodeConfig(data["node"], data["x"], data["y"], tx_range=data["tx_range"])
        )
    if kind == "leave":
        return LeaveEvent(data["node"])
    if kind == "move":
        return MoveEvent(data["node"], data["x"], data["y"])
    if kind == "power":
        return PowerChangeEvent(data["node"], data["new_range"])
    raise ConfigurationError(f"unknown event kind {kind!r}")


def save_trace(events: Iterable[Event], path: str | Path, *, note: str = "") -> None:
    """Write an event trace to ``path`` as JSON."""
    doc = {
        "format": "minim-cdma-trace",
        "version": _FORMAT_VERSION,
        "note": note,
        "events": [event_to_dict(e) for e in events],
    }
    Path(path).write_text(json.dumps(doc, indent=1))


def load_trace(path: str | Path) -> list[Event]:
    """Read an event trace written by :func:`save_trace`."""
    doc = json.loads(Path(path).read_text())
    if doc.get("format") != "minim-cdma-trace":
        raise ConfigurationError(f"{path}: not a minim-cdma trace file")
    if doc.get("version") != _FORMAT_VERSION:
        raise ConfigurationError(
            f"{path}: unsupported trace version {doc.get('version')!r}"
        )
    return [event_from_dict(d) for d in doc["events"]]


def replay(
    events: Sequence[Event],
    network: AdHocNetwork,
) -> list[RecodeResult]:
    """Apply ``events`` in order to ``network``; returns per-event results."""
    return [network.apply(e) for e in events]
