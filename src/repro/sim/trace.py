"""Event-trace serialization: save, load and replay workloads.

Reproducibility plumbing: any event sequence (generated workloads,
mobility traces, hand-written scenarios) can be written to JSON and
replayed later against any strategy, so experiments can be archived and
re-examined without re-rolling RNG state.

Two document shapes share one format name:

* **flat traces** (version 1) — a plain event list, the historical
  shape;
* **staged plans** (version 2) — a
  :class:`~repro.sim.timeline.TracePlan`: the same events segmented
  into content-keyed stages, with stage keys, strategy lineup and
  measure preserved verbatim, so an archived plan re-enters the
  checkpoint-tree machinery with its sharing identity intact.

:func:`save_trace` picks the version from what it is given;
:func:`load_trace` returns whichever shape the file holds.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Sequence
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.events.base import Event, JoinEvent, LeaveEvent, MoveEvent, PowerChangeEvent
from repro.sim.network import AdHocNetwork
from repro.strategies.base import RecodeResult
from repro.topology.node import NodeConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle: timeline imports us
    from repro.sim.timeline import TracePlan

__all__ = ["event_to_dict", "event_from_dict", "save_trace", "load_trace", "replay"]

_FORMAT_VERSION = 1
_STAGED_VERSION = 2


def event_to_dict(event: Event) -> dict:
    """Serialize one event to a plain JSON-able dict."""
    if isinstance(event, JoinEvent):
        c = event.config
        return {
            "kind": "join",
            "node": c.node_id,
            "x": c.x,
            "y": c.y,
            "tx_range": c.tx_range,
        }
    if isinstance(event, LeaveEvent):
        return {"kind": "leave", "node": event.node_id}
    if isinstance(event, MoveEvent):
        return {"kind": "move", "node": event.node_id, "x": event.x, "y": event.y}
    if isinstance(event, PowerChangeEvent):
        return {"kind": "power", "node": event.node_id, "new_range": event.new_range}
    raise ConfigurationError(f"unknown event type {type(event).__name__}")


def event_from_dict(data: dict) -> Event:
    """Deserialize one event."""
    kind = data.get("kind")
    if kind == "join":
        return JoinEvent(
            NodeConfig(data["node"], data["x"], data["y"], tx_range=data["tx_range"])
        )
    if kind == "leave":
        return LeaveEvent(data["node"])
    if kind == "move":
        return MoveEvent(data["node"], data["x"], data["y"])
    if kind == "power":
        return PowerChangeEvent(data["node"], data["new_range"])
    raise ConfigurationError(f"unknown event kind {kind!r}")


def save_trace(
    events: Iterable[Event] | TracePlan, path: str | Path, *, note: str = ""
) -> None:
    """Write an event trace — flat or staged — to ``path`` as JSON.

    A plain event iterable writes the historical flat document
    (version 1); a :class:`~repro.sim.timeline.TracePlan` writes a
    staged document (version 2) that preserves every stage's kind,
    index, events *and content key*, plus the plan's strategy lineup
    and measure — :func:`load_trace` reproduces the plan exactly, keys
    included.
    """
    from repro.sim.timeline import TracePlan

    if isinstance(events, TracePlan):
        doc = {
            "format": "minim-cdma-trace",
            "version": _STAGED_VERSION,
            "note": note,
            "strategies": list(events.strategies),
            "measure": events.measure,
            "stages": [
                {
                    "kind": stage.kind,
                    "index": stage.index,
                    "key": stage.key,
                    "events": [event_to_dict(e) for e in stage.events],
                }
                for stage in events.stages
            ],
        }
    else:
        doc = {
            "format": "minim-cdma-trace",
            "version": _FORMAT_VERSION,
            "note": note,
            "events": [event_to_dict(e) for e in events],
        }
    Path(path).write_text(json.dumps(doc, indent=1))


def load_trace(path: str | Path) -> list[Event] | TracePlan:
    """Read a trace written by :func:`save_trace`.

    Returns a plain event list for flat (version 1) documents and a
    :class:`~repro.sim.timeline.TracePlan` for staged (version 2) ones;
    staged plans keep their serialized stage keys verbatim, so an
    archived plan shares checkpoints with freshly built plans of the
    same content.
    """
    doc = json.loads(Path(path).read_text())
    if doc.get("format") != "minim-cdma-trace":
        raise ConfigurationError(f"{path}: not a minim-cdma trace file")
    version = doc.get("version")
    if version == _FORMAT_VERSION:
        return [event_from_dict(d) for d in doc["events"]]
    if version == _STAGED_VERSION:
        from repro.sim.timeline import Stage, TracePlan

        try:
            return TracePlan(
                stages=tuple(
                    Stage(
                        kind=s["kind"],
                        index=int(s["index"]),
                        events=tuple(event_from_dict(d) for d in s["events"]),
                        key=s["key"],
                    )
                    for s in doc["stages"]
                ),
                strategies=tuple(doc["strategies"]),
                measure=doc["measure"],
            )
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(f"{path}: malformed staged trace: {exc}") from exc
    raise ConfigurationError(f"{path}: unsupported trace version {version!r}")


def replay(
    events: Sequence[Event],
    network: AdHocNetwork,
) -> list[RecodeResult]:
    """Apply ``events`` in order to ``network``; returns per-event results."""
    return [network.apply(e) for e in events]
