"""Mobility models generating discrete move events.

The paper's movement experiment uses uniform random jumps; richer
scenarios (the conference example, ad-hoc vehicle fleets) call for the
classic **random waypoint** model: each node picks a destination
uniformly in the arena, walks toward it in discrete steps of its own
speed, pauses, then picks the next destination.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.events.base import MoveEvent
from repro.topology.node import NodeConfig
from repro.types import NodeId

__all__ = ["RandomWaypointModel"]


@dataclass
class _WalkerState:
    x: float
    y: float
    dest_x: float
    dest_y: float
    speed: float
    pause_left: int


class RandomWaypointModel:
    """Random-waypoint mobility over a rectangular arena.

    Parameters
    ----------
    configs:
        Initial node configurations (positions seed the walkers).
    rng:
        Randomness source (destinations, speeds, pauses).
    speed_range:
        Per-leg speed interval (distance units per step).
    pause_steps:
        Steps spent paused on arrival before choosing a new waypoint.
    area:
        Arena ``(width, height)``.

    Each call to :meth:`step` advances every walker once and returns the
    corresponding :class:`MoveEvent` list (ascending node id); nodes
    mid-pause emit no event.
    """

    def __init__(
        self,
        configs: list[NodeConfig],
        rng: np.random.Generator,
        *,
        speed_range: tuple[float, float] = (1.0, 5.0),
        pause_steps: int = 0,
        area: tuple[float, float] = (100.0, 100.0),
    ) -> None:
        lo, hi = speed_range
        if not (0 < lo <= hi):
            raise ConfigurationError(f"need 0 < min speed <= max speed, got {speed_range}")
        if pause_steps < 0:
            raise ConfigurationError(f"pause_steps must be >= 0, got {pause_steps}")
        self._rng = rng
        self._area = area
        self._speed_range = speed_range
        self._pause_steps = pause_steps
        self._walkers: dict[NodeId, _WalkerState] = {}
        for cfg in sorted(configs, key=lambda c: c.node_id):
            self._walkers[cfg.node_id] = _WalkerState(
                x=cfg.x,
                y=cfg.y,
                dest_x=cfg.x,
                dest_y=cfg.y,
                speed=0.0,
                pause_left=0,
            )
            self._pick_waypoint(cfg.node_id)

    # ------------------------------------------------------------------
    def position_of(self, node_id: NodeId) -> tuple[float, float]:
        """Current position of a walker."""
        w = self._walkers[node_id]
        return (w.x, w.y)

    def _pick_waypoint(self, node_id: NodeId) -> None:
        w = self._walkers[node_id]
        width, height = self._area
        w.dest_x = float(self._rng.uniform(0.0, width))
        w.dest_y = float(self._rng.uniform(0.0, height))
        w.speed = float(self._rng.uniform(*self._speed_range))

    def step(self) -> list[MoveEvent]:
        """Advance every walker one step; return their move events."""
        events: list[MoveEvent] = []
        for node_id in sorted(self._walkers):
            w = self._walkers[node_id]
            if w.pause_left > 0:
                w.pause_left -= 1
                continue
            dx, dy = w.dest_x - w.x, w.dest_y - w.y
            dist = math.hypot(dx, dy)
            if dist <= w.speed:
                w.x, w.y = w.dest_x, w.dest_y
                w.pause_left = self._pause_steps
                self._pick_waypoint(node_id)
            else:
                w.x += w.speed * dx / dist
                w.y += w.speed * dy / dist
            events.append(MoveEvent(node_id, w.x, w.y))
        return events

    def run(self, steps: int) -> list[list[MoveEvent]]:
        """``steps`` successive rounds of movement."""
        if steps < 0:
            raise ConfigurationError(f"steps must be >= 0, got {steps}")
        return [self.step() for _ in range(steps)]
