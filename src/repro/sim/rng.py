"""Seeded randomness utilities.

All experiment randomness flows from a single master seed through
``numpy.random.SeedSequence.spawn``, so results are bit-identical across
process counts and run orders.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rng_from", "spawn_seeds"]


def rng_from(seed: int | np.random.SeedSequence | np.random.Generator) -> np.random.Generator:
    """A ``numpy.random.Generator`` from a seed, seed sequence or generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seeds(master_seed: int, n: int) -> list[np.random.SeedSequence]:
    """``n`` independent child seed sequences of ``master_seed``.

    Child ``i`` is always the same for a given master seed, regardless
    of how many siblings are spawned or in which order they are used.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return np.random.SeedSequence(master_seed).spawn(n)
