"""The paper's evaluation experiments (section 5).

Each function reproduces one sweep and returns an
:class:`~repro.analysis.series.ExperimentSeries` whose metric slices
correspond to figure panels:

* :func:`run_join_experiment` — Fig 10(a-c): N sequential joins.
* :func:`run_range_sweep_experiment` — Fig 10(d-f): average-range sweep.
* :func:`run_power_experiment` — Fig 11(a-c): raisefactor sweep.
* :func:`run_movement_disp_experiment` — Fig 12(a): maxdisp sweep.
* :func:`run_movement_rounds_experiment` — Fig 12(b-d): round sweep.

Every data point is averaged over ``runs`` independent random networks
(paper: 100; default here: 5, overridable via the ``REPRO_RUNS``
environment variable or the ``runs`` argument).  Workloads are generated
once per run and replayed identically against every strategy.  All
per-run task functions are module-level so ``processes=k`` can fan runs
out over a process pool.
"""

from __future__ import annotations

import os
from collections.abc import Sequence

import numpy as np

from repro.analysis.series import ExperimentSeries
from repro.errors import ConfigurationError
from repro.sim.network import AdHocNetwork
from repro.sim.random_networks import (
    DEFAULT_MAX_RANGE,
    DEFAULT_MIN_RANGE,
    sample_configs,
)
from repro.sim.runner import parallel_map, resolve_runs
from repro.sim.workloads import join_workload, movement_rounds, power_raise_workload
from repro.strategies.ablation import GreedySequentialStrategy
from repro.strategies.base import RecodingStrategy
from repro.strategies.bbb_global import BBBGlobalStrategy
from repro.strategies.cp import CPStrategy
from repro.strategies.minim import MinimStrategy

__all__ = [
    "DEFAULT_STRATEGIES",
    "make_strategy",
    "run_join_experiment",
    "run_movement_disp_experiment",
    "run_movement_rounds_experiment",
    "run_power_experiment",
    "run_range_sweep_experiment",
]

#: The paper's three contenders, in its plotting order.
DEFAULT_STRATEGIES: tuple[str, ...] = ("Minim", "CP", "BBB")

#: Metric names of the absolute experiments (join / range sweep).
_ABS_METRICS = ("max_color", "recodings", "messages")
#: Metric names of the delta experiments (power / movement).
_DELTA_METRICS = ("delta_max_color", "delta_recodings", "delta_messages")

_DEFAULT_RUNS = 5
_DEFAULT_SEED = 2001


def make_strategy(name: str) -> RecodingStrategy:
    """Instantiate a strategy by its experiment-table name.

    Recognized: ``Minim``, ``CP``, ``BBB``, ``GreedySeq`` and the
    weight-ablation variant ``Minim/w1`` (old-color weight 1).
    """
    if name == "Minim":
        return MinimStrategy()
    if name == "CP":
        return CPStrategy()
    if name == "BBB":
        return BBBGlobalStrategy()
    if name == "GreedySeq":
        return GreedySequentialStrategy()
    if name == "Minim/w1":
        return MinimStrategy(old_color_weight=1)
    raise ConfigurationError(f"unknown strategy name {name!r}")


def _env_runs() -> str | None:
    return os.environ.get("REPRO_RUNS")


def _built_network(strategy_name: str, configs) -> AdHocNetwork:
    """A network with all of ``configs`` joined under the strategy."""
    net = AdHocNetwork(make_strategy(strategy_name))
    for ev in join_workload(configs):
        net.apply(ev)
    return net


# ----------------------------------------------------------------------
# Experiment 5.1 — node join (Fig 10 a-c) and range sweep (Fig 10 d-f)
# ----------------------------------------------------------------------
def _join_task(args: tuple) -> list[tuple[float, float, float]]:
    n, seed, min_range, max_range, strategies = args
    rng = np.random.default_rng(seed)
    configs = sample_configs(n, rng, min_range=min_range, max_range=max_range)
    out = []
    for name in strategies:
        net = _built_network(name, configs)
        out.append(
            (
                float(net.max_color()),
                float(net.metrics.total_recodings),
                float(net.metrics.total_messages),
            )
        )
    return out


def run_join_experiment(
    n_values: Sequence[int] = (40, 60, 80, 100, 120),
    *,
    min_range: float = DEFAULT_MIN_RANGE,
    max_range: float = DEFAULT_MAX_RANGE,
    runs: int | None = None,
    seed: int = _DEFAULT_SEED,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    processes: int | None = None,
) -> ExperimentSeries:
    """Fig 10(a-c): N nodes join one by one; final metrics vs N."""
    runs = resolve_runs(runs, _DEFAULT_RUNS, _env_runs())
    point_seeds = np.random.SeedSequence(seed).spawn(len(n_values))
    tasks = [
        (n, run_seed, min_range, max_range, tuple(strategies))
        for i, n in enumerate(n_values)
        for run_seed in point_seeds[i].spawn(runs)
    ]
    raw = parallel_map(_join_task, tasks, processes=processes)
    data = np.asarray(raw, dtype=np.float64).reshape(
        len(n_values), runs, len(strategies), len(_ABS_METRICS)
    )
    return _series_from("fig10-join", "N", list(n_values), data, strategies, _ABS_METRICS, runs)


def run_range_sweep_experiment(
    avg_ranges: Sequence[float] = (5.0, 15.0, 25.0, 35.0, 45.0, 55.0, 65.0),
    *,
    n: int = 100,
    spread: float = 5.0,
    runs: int | None = None,
    seed: int = _DEFAULT_SEED,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    processes: int | None = None,
) -> ExperimentSeries:
    """Fig 10(d-f): fixed N, sweep the average transmission range.

    The paper fixes ``maxr − minr = 5``; ``avg_ranges`` are the midpoints
    ``(minr + maxr) / 2``.
    """
    runs = resolve_runs(runs, _DEFAULT_RUNS, _env_runs())
    point_seeds = np.random.SeedSequence(seed).spawn(len(avg_ranges))
    tasks = []
    for i, avg in enumerate(avg_ranges):
        lo, hi = avg - spread / 2.0, avg + spread / 2.0
        if lo <= 0:
            raise ConfigurationError(f"avg range {avg} too small for spread {spread}")
        for run_seed in point_seeds[i].spawn(runs):
            tasks.append((n, run_seed, lo, hi, tuple(strategies)))
    raw = parallel_map(_join_task, tasks, processes=processes)
    data = np.asarray(raw, dtype=np.float64).reshape(
        len(avg_ranges), runs, len(strategies), len(_ABS_METRICS)
    )
    return _series_from(
        "fig10-range", "avgR", list(avg_ranges), data, strategies, _ABS_METRICS, runs
    )


# ----------------------------------------------------------------------
# Experiment 5.2 — power range increase (Fig 11 a-c)
# ----------------------------------------------------------------------
def _power_task(args: tuple) -> list[tuple[float, float, float]]:
    n, seed, min_range, max_range, raisefactor, fraction, strategies = args
    cfg_seed, raise_seed = seed.spawn(2)
    configs = sample_configs(
        n, np.random.default_rng(cfg_seed), min_range=min_range, max_range=max_range
    )
    events = power_raise_workload(
        configs, raisefactor, np.random.default_rng(raise_seed), fraction=fraction
    )
    out = []
    for name in strategies:
        net = _built_network(name, configs)
        before = net.metrics.snapshot()
        for ev in events:
            net.apply(ev)
        delta = before.delta(net.metrics.snapshot())
        out.append(
            (float(delta.max_color), float(delta.total_recodings), float(delta.total_messages))
        )
    return out


def run_power_experiment(
    raisefactors: Sequence[float] = (1.0, 2.0, 3.0, 4.0, 5.0, 6.0),
    *,
    n: int = 100,
    fraction: float = 0.5,
    min_range: float = DEFAULT_MIN_RANGE,
    max_range: float = DEFAULT_MAX_RANGE,
    runs: int | None = None,
    seed: int = _DEFAULT_SEED,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    processes: int | None = None,
) -> ExperimentSeries:
    """Fig 11(a-c): raise a random half's ranges by ``raisefactor``.

    Per the paper, each run starts from the post-join network of
    experiment 5.1 (N=100, same range interval) and reports deltas
    relative to it.  The same run seed is reused across raisefactors, so
    every sweep point perturbs the same base networks.
    """
    runs = resolve_runs(runs, _DEFAULT_RUNS, _env_runs())
    run_seeds = np.random.SeedSequence(seed).spawn(runs)
    tasks = [
        (n, run_seeds[r].spawn(1)[0], min_range, max_range, rf, fraction, tuple(strategies))
        for rf in raisefactors
        for r in range(runs)
    ]
    raw = parallel_map(_power_task, tasks, processes=processes)
    data = np.asarray(raw, dtype=np.float64).reshape(
        len(raisefactors), runs, len(strategies), len(_DELTA_METRICS)
    )
    return _series_from(
        "fig11-power", "raisefactor", list(raisefactors), data, strategies, _DELTA_METRICS, runs
    )


# ----------------------------------------------------------------------
# Experiment 5.3 — node movement (Fig 12 a-d)
# ----------------------------------------------------------------------
def _move_disp_task(args: tuple) -> list[tuple[float, float, float]]:
    n, seed, min_range, max_range, maxdisp, rounds, strategies = args
    cfg_seed, move_seed = seed.spawn(2)
    configs = sample_configs(
        n, np.random.default_rng(cfg_seed), min_range=min_range, max_range=max_range
    )
    all_rounds = movement_rounds(
        configs, rounds, maxdisp, np.random.default_rng(move_seed)
    )
    out = []
    for name in strategies:
        net = _built_network(name, configs)
        before = net.metrics.snapshot()
        for round_events in all_rounds:
            for ev in round_events:
                net.apply(ev)
        delta = before.delta(net.metrics.snapshot())
        out.append(
            (float(delta.max_color), float(delta.total_recodings), float(delta.total_messages))
        )
    return out


def run_movement_disp_experiment(
    maxdisps: Sequence[float] = (0.0, 10.0, 20.0, 40.0, 60.0, 80.0),
    *,
    n: int = 40,
    rounds: int = 1,
    min_range: float = DEFAULT_MIN_RANGE,
    max_range: float = DEFAULT_MAX_RANGE,
    runs: int | None = None,
    seed: int = _DEFAULT_SEED,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    processes: int | None = None,
) -> ExperimentSeries:
    """Fig 12(a): one round of moves, sweeping the max displacement.

    The same run seed is reused across ``maxdisps`` so each sweep point
    scales the *same* random walks.
    """
    runs = resolve_runs(runs, _DEFAULT_RUNS, _env_runs())
    run_seeds = np.random.SeedSequence(seed).spawn(runs)
    tasks = [
        (n, run_seeds[r].spawn(1)[0], min_range, max_range, d, rounds, tuple(strategies))
        for d in maxdisps
        for r in range(runs)
    ]
    raw = parallel_map(_move_disp_task, tasks, processes=processes)
    data = np.asarray(raw, dtype=np.float64).reshape(
        len(maxdisps), runs, len(strategies), len(_DELTA_METRICS)
    )
    return _series_from(
        "fig12-move-disp", "maxdisp", list(maxdisps), data, strategies, _DELTA_METRICS, runs
    )


def _move_rounds_task(args: tuple) -> list[list[tuple[float, float, float]]]:
    n, seed, min_range, max_range, maxdisp, round_count, strategies = args
    cfg_seed, move_seed = seed.spawn(2)
    configs = sample_configs(
        n, np.random.default_rng(cfg_seed), min_range=min_range, max_range=max_range
    )
    all_rounds = movement_rounds(
        configs, round_count, maxdisp, np.random.default_rng(move_seed)
    )
    out: list[list[tuple[float, float, float]]] = []
    for name in strategies:
        net = _built_network(name, configs)
        before = net.metrics.snapshot()
        per_round: list[tuple[float, float, float]] = []
        for round_events in all_rounds:
            for ev in round_events:
                net.apply(ev)
            delta = before.delta(net.metrics.snapshot())
            per_round.append(
                (
                    float(delta.max_color),
                    float(delta.total_recodings),
                    float(delta.total_messages),
                )
            )
        out.append(per_round)
    return out


def run_movement_rounds_experiment(
    round_count: int = 10,
    *,
    maxdisp: float = 40.0,
    n: int = 40,
    min_range: float = DEFAULT_MIN_RANGE,
    max_range: float = DEFAULT_MAX_RANGE,
    runs: int | None = None,
    seed: int = _DEFAULT_SEED,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    processes: int | None = None,
) -> ExperimentSeries:
    """Fig 12(b-d): cumulative deltas after each of ``round_count`` rounds."""
    runs = resolve_runs(runs, _DEFAULT_RUNS, _env_runs())
    run_seeds = np.random.SeedSequence(seed).spawn(runs)
    tasks = [
        (n, run_seeds[r].spawn(1)[0], min_range, max_range, maxdisp, round_count, tuple(strategies))
        for r in range(runs)
    ]
    raw = parallel_map(_move_rounds_task, tasks, processes=processes)
    # raw: runs x strategies x rounds x metrics -> rounds x runs x strategies x metrics
    data = np.asarray(raw, dtype=np.float64).transpose(2, 0, 1, 3)
    return _series_from(
        "fig12-move-rounds",
        "round",
        [float(r) for r in range(1, round_count + 1)],
        data,
        strategies,
        _DELTA_METRICS,
        runs,
    )


# ----------------------------------------------------------------------
# Shared assembly
# ----------------------------------------------------------------------
def _series_from(
    experiment: str,
    x_label: str,
    x_values: list[float],
    data: np.ndarray,
    strategies: Sequence[str],
    metric_names: Sequence[str],
    runs: int,
) -> ExperimentSeries:
    """Assemble an :class:`ExperimentSeries` from a (x, run, strategy,
    metric) tensor."""
    means = data.mean(axis=1)
    if runs > 1:
        sems = data.std(axis=1, ddof=1) / np.sqrt(runs)
    else:
        sems = np.zeros_like(means)
    metrics = {
        m: {s: means[:, si, mi].tolist() for si, s in enumerate(strategies)}
        for mi, m in enumerate(metric_names)
    }
    stderr = {
        m: {s: sems[:, si, mi].tolist() for si, s in enumerate(strategies)}
        for mi, m in enumerate(metric_names)
    }
    return ExperimentSeries(
        experiment=experiment,
        x_label=x_label,
        x_values=[float(x) for x in x_values],
        metrics=metrics,
        runs=runs,
        stderr=stderr,
    )
