"""The paper's evaluation experiments (section 5) as sweep specs.

Each function reproduces one figure sweep by specializing the matching
registered scenario (see :mod:`repro.sim.scenarios`) and handing it to
the unified orchestrator (:func:`repro.sim.sweep.run_sweep`), which
replays every workload single-pass against all strategies:

* :func:`run_join_experiment` — Fig 10(a-c): N sequential joins.
* :func:`run_range_sweep_experiment` — Fig 10(d-f): average-range sweep.
* :func:`run_power_experiment` — Fig 11(a-c): raisefactor sweep.
* :func:`run_movement_disp_experiment` — Fig 12(a): maxdisp sweep.
* :func:`run_movement_rounds_experiment` — Fig 12(b-d): round sweep.

Every data point is averaged over ``runs`` independent random networks
(paper: 100; default here: 5, overridable via the ``REPRO_RUNS``
environment variable or the ``runs`` argument).  Workloads are generated
once per run and replayed identically against every strategy; passing a
:class:`~repro.sim.results.ResultsStore` makes re-invocations resume
from completed points.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import replace

from repro.analysis.series import ExperimentSeries
from repro.errors import ConfigurationError
from repro.sim.control import PrecisionTarget, RunController
from repro.sim.random_networks import DEFAULT_MAX_RANGE, DEFAULT_MIN_RANGE
from repro.sim.executor import Executor
from repro.sim.registry import get_scenario
from repro.sim.results import ResultsBackend
from repro.sim.scenarios import MobilitySpec, PowerSpec
from repro.sim.sweep import run_sweep

# Re-exported for backward compatibility: the strategy catalog lives in
# repro.strategies now.
from repro.strategies import DEFAULT_STRATEGIES, make_strategy

__all__ = [
    "DEFAULT_STRATEGIES",
    "make_strategy",
    "run_join_experiment",
    "run_movement_disp_experiment",
    "run_movement_rounds_experiment",
    "run_power_experiment",
    "run_range_sweep_experiment",
]

_DEFAULT_SEED = 2001


# ----------------------------------------------------------------------
# Experiment 5.1 — node join (Fig 10 a-c) and range sweep (Fig 10 d-f)
# ----------------------------------------------------------------------
def run_join_experiment(
    n_values: Sequence[int] = (40, 60, 80, 100, 120),
    *,
    min_range: float = DEFAULT_MIN_RANGE,
    max_range: float = DEFAULT_MAX_RANGE,
    runs: int | None = None,
    seed: int = _DEFAULT_SEED,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    processes: int | None = None,
    store: ResultsBackend | None = None,
    resume: bool = True,
    executor: Executor | str | None = None,
    warm_start: bool | None = None,
    precision: "RunController | PrecisionTarget | float | None" = None,
) -> ExperimentSeries:
    """Fig 10(a-c): N nodes join one by one; final metrics vs N."""
    spec = replace(
        get_scenario("fig10-join"),
        min_range=min_range,
        max_range=max_range,
        strategies=tuple(strategies),
        sweep_values=tuple(float(n) for n in n_values),
    )
    return run_sweep(
        spec,
        runs=runs,
        seed=seed,
        processes=processes,
        store=store,
        resume=resume,
        executor=executor,
        warm_start=warm_start,
        precision=precision,
    )


def run_range_sweep_experiment(
    avg_ranges: Sequence[float] = (5.0, 15.0, 25.0, 35.0, 45.0, 55.0, 65.0),
    *,
    n: int = 100,
    spread: float = 5.0,
    runs: int | None = None,
    seed: int = _DEFAULT_SEED,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    processes: int | None = None,
    store: ResultsBackend | None = None,
    resume: bool = True,
    executor: Executor | str | None = None,
    warm_start: bool | None = None,
    precision: "RunController | PrecisionTarget | float | None" = None,
) -> ExperimentSeries:
    """Fig 10(d-f): fixed N, sweep the average transmission range.

    The paper fixes ``maxr − minr = 5``; ``avg_ranges`` are the midpoints
    ``(minr + maxr) / 2``.
    """
    if spread <= 0:
        raise ConfigurationError(f"range spread must be positive, got {spread}")
    for avg in avg_ranges:
        if avg - spread / 2.0 <= 0:
            raise ConfigurationError(f"avg range {avg} too small for spread {spread}")
    spec = replace(
        get_scenario("fig10-range"),
        n=n,
        # The sweep re-centers [min_range, max_range] on each average;
        # only their difference (the spread) carries through.
        min_range=1.5 * spread,
        max_range=2.5 * spread,
        strategies=tuple(strategies),
        sweep_values=tuple(float(a) for a in avg_ranges),
    )
    return run_sweep(
        spec,
        runs=runs,
        seed=seed,
        processes=processes,
        store=store,
        resume=resume,
        executor=executor,
        warm_start=warm_start,
        precision=precision,
    )


# ----------------------------------------------------------------------
# Experiment 5.2 — power range increase (Fig 11 a-c)
# ----------------------------------------------------------------------
def run_power_experiment(
    raisefactors: Sequence[float] = (1.0, 2.0, 3.0, 4.0, 5.0, 6.0),
    *,
    n: int = 100,
    fraction: float = 0.5,
    min_range: float = DEFAULT_MIN_RANGE,
    max_range: float = DEFAULT_MAX_RANGE,
    runs: int | None = None,
    seed: int = _DEFAULT_SEED,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    processes: int | None = None,
    store: ResultsBackend | None = None,
    resume: bool = True,
    executor: Executor | str | None = None,
    warm_start: bool | None = None,
    precision: "RunController | PrecisionTarget | float | None" = None,
) -> ExperimentSeries:
    """Fig 11(a-c): raise a random half's ranges by ``raisefactor``.

    Per the paper, each run starts from the post-join network of
    experiment 5.1 (N=100, same range interval) and reports deltas
    relative to it.  Run seeds are paired across raisefactors, so every
    sweep point perturbs the same base networks.
    """
    spec = replace(
        get_scenario("fig11-power"),
        n=n,
        min_range=min_range,
        max_range=max_range,
        power=PowerSpec(kind="raise", fraction=fraction),
        strategies=tuple(strategies),
        sweep_values=tuple(float(rf) for rf in raisefactors),
    )
    return run_sweep(
        spec,
        runs=runs,
        seed=seed,
        processes=processes,
        store=store,
        resume=resume,
        executor=executor,
        warm_start=warm_start,
        precision=precision,
    )


# ----------------------------------------------------------------------
# Experiment 5.3 — node movement (Fig 12 a-d)
# ----------------------------------------------------------------------
def run_movement_disp_experiment(
    maxdisps: Sequence[float] = (0.0, 10.0, 20.0, 40.0, 60.0, 80.0),
    *,
    n: int = 40,
    rounds: int = 1,
    min_range: float = DEFAULT_MIN_RANGE,
    max_range: float = DEFAULT_MAX_RANGE,
    runs: int | None = None,
    seed: int = _DEFAULT_SEED,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    processes: int | None = None,
    store: ResultsBackend | None = None,
    resume: bool = True,
    executor: Executor | str | None = None,
    warm_start: bool | None = None,
    precision: "RunController | PrecisionTarget | float | None" = None,
) -> ExperimentSeries:
    """Fig 12(a): one round of moves, sweeping the max displacement.

    Run seeds are paired across ``maxdisps`` so each sweep point scales
    the *same* random walks.
    """
    spec = replace(
        get_scenario("fig12-move-disp"),
        n=n,
        min_range=min_range,
        max_range=max_range,
        mobility=MobilitySpec(kind="jumps", steps=rounds),
        strategies=tuple(strategies),
        sweep_values=tuple(float(d) for d in maxdisps),
    )
    return run_sweep(
        spec,
        runs=runs,
        seed=seed,
        processes=processes,
        store=store,
        resume=resume,
        executor=executor,
        warm_start=warm_start,
        precision=precision,
    )


def run_movement_rounds_experiment(
    round_count: int = 10,
    *,
    maxdisp: float = 40.0,
    n: int = 40,
    min_range: float = DEFAULT_MIN_RANGE,
    max_range: float = DEFAULT_MAX_RANGE,
    runs: int | None = None,
    seed: int = _DEFAULT_SEED,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    processes: int | None = None,
    store: ResultsBackend | None = None,
    resume: bool = True,
    executor: Executor | str | None = None,
    warm_start: bool | None = None,
    precision: "RunController | PrecisionTarget | float | None" = None,
) -> ExperimentSeries:
    """Fig 12(b-d): cumulative deltas after each of ``round_count`` rounds."""
    spec = replace(
        get_scenario("fig12-move-rounds"),
        n=n,
        min_range=min_range,
        max_range=max_range,
        mobility=MobilitySpec(kind="jumps", maxdisp=maxdisp),
        strategies=tuple(strategies),
        sweep_values=(float(round_count),),
    )
    return run_sweep(
        spec,
        runs=runs,
        seed=seed,
        processes=processes,
        store=store,
        resume=resume,
        executor=executor,
        warm_start=warm_start,
        precision=precision,
    )
