"""Unified observability: span tracing + metrics across the stack.

One switch turns on both halves: :func:`enable` (or the ``REPRO_TRACE``
environment variable, which is how child processes inherit it) starts
the JSONL tracer of :mod:`repro.obs.tracing` and flips the
:mod:`repro.obs.metrics` registry live.  Disabled — the default — every
instrumentation site is a single attribute-read branch or a no-op
context manager, cheap enough to live in the conflict-core hot paths
(CI gates the overhead of the *enabled* path at ≤3%; disabled is in
the noise).

Layering: this package imports nothing from the rest of ``repro``, so
any layer — topology cores, timeline, results backends, executors —
may instrument itself without cycles.  See
``docs/architecture/observability.md`` for the span model and metric
name tables.
"""

from repro.obs import metrics
from repro.obs.clock import perf_seconds, time_call, traced_peak_mb, wall_seconds
from repro.obs.tracing import (
    close,
    enable,
    enabled,
    event,
    flush_metrics,
    load_trace,
    maybe_enable_from_env,
    span,
    trace_path,
)

__all__ = [
    "metrics",
    "perf_seconds",
    "wall_seconds",
    "time_call",
    "traced_peak_mb",
    "enable",
    "close",
    "enabled",
    "event",
    "span",
    "flush_metrics",
    "load_trace",
    "trace_path",
]

# Child processes (pool workers, `minim-cdma worker` fleets) join the
# trace the moment they import any instrumented module.
maybe_enable_from_env()
