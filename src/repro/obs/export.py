"""Chrome trace-event export: open a sweep in chrome://tracing / Perfetto.

Maps the JSONL records of :mod:`repro.obs.tracing` onto the Trace
Event Format's JSON array flavor: spans become complete events
(``ph: "X"``, microsecond ``ts``/``dur``), instants become ``ph: "i"``,
and the final per-process metrics snapshots become counter tracks
(``ph: "C"``) so cache-hit and bailout counters are visible on the
same timeline as the spans that produced them.  Timestamps are epoch
seconds in the JSONL, so spans from every process in a fleet land on
one shared axis; the export rebases them to the earliest record to
keep the numbers small.
"""

from __future__ import annotations

import json
import os
from typing import Iterable

__all__ = ["chrome_trace", "write_chrome_trace"]


def chrome_trace(records: Iterable[dict]) -> dict:
    """Trace Event Format dict (``{"traceEvents": [...]}``) from records."""
    records = list(records)
    stamps = [r["ts"] for r in records if "ts" in r] + [
        r["wall"] for r in records if r.get("type") == "meta"
    ]
    origin = min(stamps) if stamps else 0.0
    events: list[dict] = []
    last_metrics: dict[int, dict] = {}
    for rec in records:
        pid = rec.get("pid", 0)
        kind = rec.get("type")
        if kind == "meta":
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": f"pid {pid}"},
                }
            )
        elif kind == "span":
            events.append(
                {
                    "name": rec["name"],
                    "cat": rec.get("cat") or "span",
                    "ph": "X",
                    "pid": pid,
                    "tid": 0,
                    "ts": (rec["ts"] - origin) * 1e6,
                    "dur": rec["dur"] * 1e6,
                    "args": dict(rec.get("args") or {}, span_id=rec.get("id")),
                }
            )
        elif kind == "event":
            events.append(
                {
                    "name": rec["name"],
                    "cat": rec.get("cat") or "event",
                    "ph": "i",
                    "s": "p",  # process-scoped instant
                    "pid": pid,
                    "tid": 0,
                    "ts": (rec["ts"] - origin) * 1e6,
                    "args": rec.get("args") or {},
                }
            )
        elif kind == "metrics":
            last_metrics[pid] = rec  # counters: keep the final snapshot
    for pid, rec in sorted(last_metrics.items()):
        ts = (rec["ts"] - origin) * 1e6
        for name, value in sorted(rec.get("data", {}).get("counters", {}).items()):
            events.append(
                {
                    "name": name,
                    "ph": "C",
                    "pid": pid,
                    "tid": 0,
                    "ts": ts,
                    "args": {"value": value},
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(records: Iterable[dict], out: str | os.PathLike[str]) -> None:
    """Write ``records`` to ``out`` as a Chrome trace JSON file."""
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(records), fh)
