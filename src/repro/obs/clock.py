"""Shared clocks for benchmarks and trace records.

Every timed code path in the repo — span durations in
:mod:`repro.obs.tracing`, the bench drivers' wall-clock medians, the
``peak_mem_mb`` tracemalloc probe — reads time through this module so
that a bench row and a trace span of the same work agree by
construction.  ``perf_seconds`` is the monotonic duration clock;
``wall_seconds`` is the epoch clock used only to anchor trace files to
calendar time (heartbeats, trace headers).
"""

from __future__ import annotations

import time
import tracemalloc
from typing import Any, Callable

__all__ = ["perf_seconds", "wall_seconds", "time_call", "traced_peak_mb"]

# Bound once so hot loops pay one global load, and so a test can fake
# time by monkeypatching the module attributes rather than ``time``.
perf_seconds: Callable[[], float] = time.perf_counter
wall_seconds: Callable[[], float] = time.time


def time_call(fn: Callable[[], Any]) -> tuple[float, Any]:
    """``(seconds, result)`` of one call, on the shared duration clock."""
    start = perf_seconds()
    result = fn()
    return perf_seconds() - start, result


def traced_peak_mb(fn: Callable[[], Any]) -> float:
    """Peak traced allocation of one ``fn()`` call, in MiB.

    Runs ``fn`` under :mod:`tracemalloc` — a dedicated untimed call,
    since tracemalloc slows allocation several-fold and must never
    overlap a timed run.  This is the single ``peak_mem_mb`` code path
    shared by the bench drivers.
    """
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / (1024 * 1024)
