"""Aggregate a JSONL trace into a human summary (``minim-cdma report``).

The report answers the questions the raw trace drowns: where did the
wall-clock go (top spans by *self* time — duration minus child spans),
how effective were the conflict-core caches (hit/miss counter ratios),
how much replay did the checkpoint tree save, and what did each
process/worker actually do (per-worker timelines).  It also hosts the
CI completeness check: every task a sweep planned for execution must
have a closed ``task.compute`` span in the merged trace.
"""

from __future__ import annotations

from typing import Iterable

from repro.obs import metrics as _met

__all__ = ["summarize", "render_report", "check_trace"]

# Counter-name pairs rendered as hit ratios: (label, hits, misses).
_RATIO_ROWS = (
    ("conflict-row cache", "core.crow_cache.hit", "core.crow_cache.miss"),
    ("conflict memo", "core.memo.hit", "core.memo.miss"),
    ("grid index (windowed)", "core.grid.window", "core.grid.bailout"),
    ("join path (bulk rows)", "core.join.bulk", "core.join.sequential"),
    ("store point reads", "store.point.hit", "store.point.miss"),
    ("store checkpoint reads", "store.ckpt.hit", "store.ckpt.miss"),
)


def _span_tree(spans: list[dict]) -> dict[str, float]:
    """Child-duration sums keyed by parent span id."""
    child_dur: dict[str, float] = {}
    for s in spans:
        parent = s.get("parent")
        if parent is not None:
            child_dur[parent] = child_dur.get(parent, 0.0) + s["dur"]
    return child_dur


def summarize(records: Iterable[dict]) -> dict:
    """Aggregate trace records into the report's data model."""
    records = list(records)
    spans = [r for r in records if r.get("type") == "span"]
    events = [r for r in records if r.get("type") == "event"]
    metas = [r for r in records if r.get("type") == "meta"]
    last_metrics: dict[int, dict] = {}
    for r in records:
        if r.get("type") == "metrics":
            last_metrics[r.get("pid", 0)] = r.get("data", {})
    merged = _met.merge_snapshots(
        [last_metrics[pid] for pid in sorted(last_metrics)]
    )

    child_dur = _span_tree(spans)
    by_name: dict[str, dict] = {}
    for s in spans:
        row = by_name.setdefault(s["name"], {"count": 0, "total": 0.0, "self": 0.0})
        row["count"] += 1
        row["total"] += s["dur"]
        row["self"] += s["dur"] - child_dur.get(s["id"], 0.0)

    event_counts: dict[str, int] = {}
    for e in events:
        event_counts[e["name"]] = event_counts.get(e["name"], 0) + 1

    workers: dict[int, dict] = {}
    for s in spans:
        w = workers.setdefault(
            s.get("pid", 0), {"spans": 0, "events": 0, "busy": 0.0, "first": None, "last": None}
        )
        w["spans"] += 1
        w["busy"] += s["dur"] - child_dur.get(s["id"], 0.0)
        w["first"] = s["ts"] if w["first"] is None else min(w["first"], s["ts"])
        end = s["ts"] + s["dur"]
        w["last"] = end if w["last"] is None else max(w["last"], end)
    for e in events:
        w = workers.setdefault(
            e.get("pid", 0), {"spans": 0, "events": 0, "busy": 0.0, "first": None, "last": None}
        )
        w["events"] += 1
        w["first"] = e["ts"] if w["first"] is None else min(w["first"], e["ts"])
        w["last"] = e["ts"] if w["last"] is None else max(w["last"], e["ts"])
        owner = (e.get("args") or {}).get("owner")
        if owner:
            w["owner"] = owner

    return {
        "files": len(metas),
        "spans": by_name,
        "events": event_counts,
        "metrics": merged,
        "workers": workers,
    }


def _fmt_seconds(s: float) -> str:
    return f"{s * 1000:.1f}ms" if s < 1 else f"{s:.2f}s"


def render_report(records: Iterable[dict], *, top: int = 15) -> str:
    """The human-readable trace summary."""
    data = summarize(records)
    lines: list[str] = []
    spans = data["spans"]
    counters = data["metrics"]["counters"]
    hists = data["metrics"]["histograms"]

    lines.append(f"trace: {data['files']} process segment(s), "
                 f"{sum(r['count'] for r in spans.values())} spans, "
                 f"{sum(data['events'].values())} events")

    lines.append("")
    lines.append(f"top spans by self-time (top {top}):")
    lines.append(f"  {'name':<28} {'count':>6} {'total':>10} {'self':>10} {'avg':>10}")
    ranked = sorted(spans.items(), key=lambda kv: kv[1]["self"], reverse=True)
    for name, row in ranked[:top]:
        lines.append(
            f"  {name:<28} {row['count']:>6} {_fmt_seconds(row['total']):>10} "
            f"{_fmt_seconds(row['self']):>10} {_fmt_seconds(row['total'] / row['count']):>10}"
        )

    ratio_rows = []
    for label, hit_key, miss_key in _RATIO_ROWS:
        hits = counters.get(hit_key, 0)
        misses = counters.get(miss_key, 0)
        if hits or misses:
            total = hits + misses
            ratio_rows.append((label, hits, misses, hits / total))
    if ratio_rows:
        lines.append("")
        lines.append("cache-hit ratios:")
        lines.append(f"  {'cache':<24} {'hits':>12} {'misses':>12} {'ratio':>8}")
        for label, hits, misses, ratio in ratio_rows:
            lines.append(f"  {label:<24} {hits:>12.0f} {misses:>12.0f} {ratio:>7.1%}")

    saved = counters.get("timeline.rounds.saved", 0)
    replayed = counters.get("timeline.rounds.replayed", 0)
    if saved or replayed:
        lines.append("")
        lines.append("checkpoint replay savings:")
        lines.append(f"  rounds replayed      {replayed:>12.0f}")
        lines.append(f"  rounds saved         {saved:>12.0f}")
        total = saved + replayed
        lines.append(f"  savings ratio        {saved / total:>11.1%}" if total else "")
        for key, label in (
            ("timeline.checkpoint.stored", "checkpoints stored"),
            ("timeline.checkpoint.hits", "checkpoint hits"),
            ("timeline.checkpoint.evicted", "checkpoints evicted"),
            ("timeline.checkpoint.bytes", "live state bytes"),
            ("ckpt.delta.stored", "delta links stored"),
            ("ckpt.delta.applied", "delta links applied"),
            ("ckpt.delta.bytes", "delta bytes"),
        ):
            if key in counters:
                lines.append(f"  {label:<20} {counters[key]:>12.0f}")

    store_keys = sorted(k for k in counters if k.startswith("store."))
    if store_keys:
        lines.append("")
        lines.append("store traffic:")
        for key in store_keys:
            lines.append(f"  {key:<28} {counters[key]:>10.0f}")

    if hists:
        lines.append("")
        lines.append("distributions:")
        lines.append(f"  {'name':<28} {'count':>8} {'mean':>10} {'min':>8} {'max':>8}")
        for name in sorted(hists):
            h = hists[name]
            mean = h["total"] / h["count"] if h["count"] else 0.0
            lines.append(
                f"  {name:<28} {h['count']:>8.0f} {mean:>10.2f} {h['min']:>8.0f} {h['max']:>8.0f}"
            )

    if data["events"]:
        lines.append("")
        lines.append("events:")
        for name in sorted(data["events"]):
            lines.append(f"  {name:<28} {data['events'][name]:>10}")

    if data["workers"]:
        lines.append("")
        lines.append("per-worker timelines:")
        origin = min(w["first"] for w in data["workers"].values() if w["first"] is not None)
        for pid in sorted(data["workers"]):
            w = data["workers"][pid]
            if w["first"] is None:
                continue
            owner = f" ({w['owner']})" if w.get("owner") else ""
            lines.append(
                f"  pid {pid}{owner}: start +{_fmt_seconds(w['first'] - origin)}, "
                f"span {_fmt_seconds(w['last'] - w['first'])}, busy {_fmt_seconds(w['busy'])}, "
                f"{w['spans']} spans / {w['events']} events"
            )

    return "\n".join(line for line in lines if line is not None)


def check_trace(records: Iterable[dict]) -> list[str]:
    """Completeness problems, empty when the trace is sound.

    The contract checked: each ``sweep.execute`` phase span declares how
    many task groups it dispatched (``args.pending``); the merged trace
    must contain at least that many closed ``task.compute`` spans
    (at-least-once queues may legitimately compute a task twice).
    """
    records = list(records)
    spans = [r for r in records if r.get("type") == "span"]
    problems: list[str] = []
    execute_spans = [s for s in spans if s["name"] == "sweep.execute"]
    if not execute_spans:
        problems.append("no sweep.execute spans found — not a sweep trace?")
        return problems
    planned = sum(int((s.get("args") or {}).get("pending", 0)) for s in execute_spans)
    computed = sum(1 for s in spans if s["name"] == "task.compute")
    if computed < planned:
        problems.append(
            f"incomplete: {planned} task group(s) dispatched but only "
            f"{computed} closed task.compute span(s)"
        )
    for s in spans:
        if "dur" not in s or "id" not in s:
            problems.append(f"malformed span record: {s.get('name', '?')!r}")
    return problems
