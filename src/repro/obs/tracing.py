"""JSONL span tracing with chained span ids, fork- and fleet-safe.

A trace is a line-delimited JSON file.  Each process writes its own
file — the enabling process (the CLI, normally) writes the path the
user asked for, and every other process (pool workers, ``minim-cdma
worker`` fleets) writes a ``PATH.<pid>`` sidecar next to it —
and :func:`load_trace` merges them.  Records:

``{"type": "meta", ...}``
    One header per file segment: pid, wall-clock anchor, argv.
``{"type": "span", "id", "parent", "name", "cat", "ts", "dur", "args"}``
    A closed span.  ``id`` is ``"<pid>:<n>"``; ``parent`` chains spans
    into a per-process tree (``None`` at the root).  ``ts`` is epoch
    seconds (so spans from different processes on one machine share a
    timeline); ``dur`` is seconds on the monotonic clock.
``{"type": "event", "name", "cat", "ts", "parent", "args"}``
    An instant (queue claim, lease break, heartbeat, ...).
``{"type": "metrics", "ts", "data"}``
    A cumulative snapshot of this process's metrics registry.  Flushed
    after every task and at close, so a killed worker loses at most the
    tail; readers keep the *last* snapshot per pid.

Records are appended and flushed one line at a time: span/event volume
is task- and queue-granular (never per simulation event), so write
cost is negligible and a crashed process leaves a readable prefix.

Enablement travels through the environment: ``enable(path)`` exports
``REPRO_TRACE`` (+ ``REPRO_TRACE_PID`` marking the primary writer), and
:mod:`repro.obs` auto-enables on import in any process that sees the
variable — that is the entire multi-process story.  A process that
forks while tracing is detected by pid change and rerouted to a fresh
sidecar with a cleared registry, so nothing is double-counted.
"""

from __future__ import annotations

import atexit
import json
import os
import sys
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator

from repro.obs import metrics
from repro.obs.clock import perf_seconds, wall_seconds

__all__ = [
    "ENV_TRACE",
    "ENV_TRACE_PID",
    "enable",
    "close",
    "enabled",
    "trace_path",
    "span",
    "event",
    "flush_metrics",
    "load_trace",
    "trace_files",
]

ENV_TRACE = "REPRO_TRACE"
ENV_TRACE_PID = "REPRO_TRACE_PID"


class _Tracer:
    """Per-process trace writer.  Use the module functions, not this."""

    def __init__(self, base: str, *, primary: bool) -> None:
        self.base = base
        self.pid = os.getpid()
        self.path = base if primary else f"{base}.{self.pid}"
        self.stack: list[str] = []
        self._next_id = 0
        self._file: IO[str] | None = None

    # -- plumbing ----------------------------------------------------

    def _out(self) -> IO[str]:
        """The open segment file, re-routed to a sidecar after a fork."""
        pid = os.getpid()
        if pid != self.pid:
            # Forked child: inherit nothing — parent owns the old file,
            # the old span stack, and the registry contents so far.
            if self._file is not None:
                try:
                    self._file.close()
                except OSError:
                    pass
            self.pid = pid
            self.path = f"{self.base}.{pid}"
            self.stack = []
            self._next_id = 0
            self._file = None
            metrics.REGISTRY.clear()
        if self._file is None:
            parent = Path(self.path).parent
            if parent and not parent.exists():
                parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "a", encoding="utf-8")
            self._write(
                {
                    "type": "meta",
                    "pid": self.pid,
                    "wall": wall_seconds(),
                    "argv": sys.argv,
                }
            )
        return self._file

    def _write(self, record: dict) -> None:
        assert self._file is not None
        self._file.write(json.dumps(record, separators=(",", ":"), default=str) + "\n")
        self._file.flush()

    def emit(self, record: dict) -> None:
        self._out()
        record["pid"] = self.pid
        self._write(record)

    def new_id(self) -> str:
        self._next_id += 1
        return f"{self.pid}:{self._next_id}"

    def close(self) -> None:
        if self._file is not None and os.getpid() == self.pid:
            try:
                self._file.close()
            except OSError:
                pass
        self._file = None


_tracer: _Tracer | None = None


def enabled() -> bool:
    """Whether observability (metrics + tracing) is on in this process."""
    return _tracer is not None


def trace_path() -> str | None:
    """This process's trace segment path, or ``None`` when disabled."""
    return _tracer.path if _tracer is not None else None


def enable(path: str | os.PathLike[str], *, export_env: bool = True) -> None:
    """Turn on tracing + metrics, writing to ``path`` (or a sidecar).

    The first process to enable on a given environment becomes the
    *primary* writer of ``path`` itself; any process inheriting the
    exported ``REPRO_TRACE`` becomes a sidecar writer.  Idempotent
    within a process.
    """
    global _tracer
    if _tracer is not None:
        return
    base = os.fspath(path)
    owner = os.environ.get(ENV_TRACE_PID)
    primary = owner is None or owner == str(os.getpid())
    if export_env:
        os.environ[ENV_TRACE] = base
        if primary:
            os.environ[ENV_TRACE_PID] = str(os.getpid())
    _tracer = _Tracer(base, primary=primary)
    metrics.ENABLED = True


def close() -> None:
    """Flush the final metrics snapshot and stop tracing (idempotent)."""
    global _tracer
    if _tracer is None:
        return
    try:
        flush_metrics()
    finally:
        tracer, _tracer = _tracer, None
        metrics.ENABLED = False
        metrics.REGISTRY.clear()
        if os.environ.get(ENV_TRACE_PID) == str(tracer.pid):
            os.environ.pop(ENV_TRACE_PID, None)
            os.environ.pop(ENV_TRACE, None)
        tracer.close()


def maybe_enable_from_env() -> None:
    """Enable tracing when ``REPRO_TRACE`` is present in the environment.

    Called on :mod:`repro.obs` import so pool workers and ``worker``
    fleet processes join a trace with zero wiring.
    """
    base = os.environ.get(ENV_TRACE)
    if base:
        enable(base)


@contextmanager
def span(name: str, cat: str = "", **args: object) -> Iterator[None]:
    """Time a block as a span chained under the current span.

    A cheap no-op context when disabled.  ``args`` land in the record
    verbatim (keep them JSON-scalar).
    """
    tracer = _tracer
    if tracer is None:
        yield None
        return
    tracer._out()  # resolve fork re-routing before we allocate an id
    sid = tracer.new_id()
    parent = tracer.stack[-1] if tracer.stack else None
    tracer.stack.append(sid)
    wall0 = wall_seconds()
    t0 = perf_seconds()
    try:
        yield None
    finally:
        dur = perf_seconds() - t0
        if tracer.stack and tracer.stack[-1] == sid:
            tracer.stack.pop()
        tracer.emit(
            {
                "type": "span",
                "id": sid,
                "parent": parent,
                "name": name,
                "cat": cat,
                "ts": wall0,
                "dur": dur,
                "args": args or {},
            }
        )


def event(name: str, cat: str = "", **args: object) -> None:
    """Record an instant event (no-op when disabled)."""
    tracer = _tracer
    if tracer is None:
        return
    tracer._out()
    tracer.emit(
        {
            "type": "event",
            "name": name,
            "cat": cat,
            "ts": wall_seconds(),
            "parent": tracer.stack[-1] if tracer.stack else None,
            "args": args or {},
        }
    )


def flush_metrics() -> None:
    """Write a cumulative metrics snapshot record (no-op when disabled)."""
    tracer = _tracer
    if tracer is None:
        return
    tracer._out()
    tracer.emit({"type": "metrics", "ts": wall_seconds(), "data": metrics.REGISTRY.snapshot()})


def trace_files(path: str | os.PathLike[str]) -> list[Path]:
    """The primary file plus every per-process sidecar, stable order."""
    base = Path(path)
    files = [base] if base.exists() else []
    if base.parent.exists():
        files.extend(sorted(p for p in base.parent.glob(base.name + ".*") if p.is_file()))
    return files


def load_trace(path: str | os.PathLike[str]) -> list[dict]:
    """All records of a trace — primary + sidecars, file order.

    Tolerates a truncated final line per file (a worker killed
    mid-write leaves a readable prefix, not a corrupt trace).
    """
    records: list[dict] = []
    for file in trace_files(path):
        with open(file, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    continue  # torn tail write
    return records


atexit.register(close)
