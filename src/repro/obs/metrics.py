"""Process-local metrics registry: counters, gauges, histograms.

The hot layers (conflict cores, timeline, results backends) record
cheap aggregate signals here — cache hits, bailouts, candidate-window
sizes — and the tracer snapshots the registry into the trace file so
``minim-cdma report`` can compute ratios across a whole sweep.

Cost discipline: every recording site is guarded by the module-level
``ENABLED`` flag, so with observability off (the default) an
instrumented hot loop pays one module-attribute read and a branch —
no function call, no allocation::

    from repro.obs import metrics as _met
    ...
    if _met.ENABLED:
        _met.REGISTRY.inc("core.crow_cache.hit", hits)

``ENABLED`` is owned by :func:`repro.obs.enable` / ``disable``; nothing
else may write it.  Histograms keep streaming aggregates
(count/total/min/max), not samples — recording stays O(1) and the
registry stays small enough to snapshot into every trace flush.
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["ENABLED", "REGISTRY", "MetricsRegistry", "inc", "observe", "set_gauge", "merge_snapshots"]

# Toggled (via this module's namespace) by repro.obs.enable/disable.
# Instrumentation sites read it directly; keep it a plain bool.
ENABLED = False


class MetricsRegistry:
    """Named counters, gauges, and streaming histograms.

    One registry per process (``REGISTRY``); worker processes snapshot
    theirs into per-process trace sidecars, and the report layer merges
    snapshots with :func:`merge_snapshots`.
    """

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, dict[str, float]] = {}

    def inc(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        h = self.histograms.get(name)
        if h is None:
            self.histograms[name] = {"count": 1, "total": value, "min": value, "max": value}
            return
        h["count"] += 1
        h["total"] += value
        if value < h["min"]:
            h["min"] = value
        if value > h["max"]:
            h["max"] = value

    def snapshot(self) -> dict:
        """A JSON-ready copy of the current state."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
        }

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()


REGISTRY = MetricsRegistry()


def inc(name: str, value: float = 1) -> None:
    """Increment a counter (no-op while disabled)."""
    if ENABLED:
        REGISTRY.inc(name, value)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge to its latest value (no-op while disabled)."""
    if ENABLED:
        REGISTRY.set_gauge(name, value)


def observe(name: str, value: float) -> None:
    """Fold a sample into a streaming histogram (no-op while disabled)."""
    if ENABLED:
        REGISTRY.observe(name, value)


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Merge per-process snapshots into one cross-process view.

    Counters and histogram aggregates sum/extremize; gauges keep the
    last writer (snapshots are ordered by flush time, so "last" is the
    most recent observation across the fleet).
    """
    merged = MetricsRegistry()
    for snap in snapshots:
        for name, value in snap.get("counters", {}).items():
            merged.inc(name, value)
        for name, value in snap.get("gauges", {}).items():
            merged.set_gauge(name, value)
        for name, h in snap.get("histograms", {}).items():
            out = merged.histograms.get(name)
            if out is None:
                merged.histograms[name] = dict(h)
            else:
                out["count"] += h["count"]
                out["total"] += h["total"]
                out["min"] = min(out["min"], h["min"])
                out["max"] = max(out["max"], h["max"])
    return merged.snapshot()
