"""Distributed runtime: message-driven executions of the recoding protocols.

The strategies in :mod:`repro.strategies` are *oracle* implementations:
they compute the recoding outcome directly from the global graph.  The
paper's algorithms, however, are distributed — "communication only local
to the event ... no central coordination".  This package provides the
message-passing executions:

* :mod:`~repro.distributed.bus` — FIFO message bus with delivery and
  accounting.
* :mod:`~repro.distributed.join_protocol` — RecodeOnJoin / RecodeOnMove
  as run by node ``n``: constraint collection from its from-neighbors
  (steps 1-2 of Fig 3), local matching, color dissemination with acks
  (step 6).
* :mod:`~repro.distributed.cp_protocol` — CP's identifier-ordered
  selection as synchronous rounds of local-maximum elections.

Tests assert the message-driven executions produce byte-identical
recodings to the oracle strategies; the distributed-overhead bench
compares their message and round counts.
"""

from repro.distributed.bus import MessageBus
from repro.distributed.cp_protocol import run_distributed_cp_join
from repro.distributed.join_protocol import run_distributed_join
from repro.distributed.message import Message, MessageKind
from repro.distributed.power_protocol import run_distributed_power_increase
from repro.distributed.runtime import ProtocolStats

__all__ = [
    "Message",
    "MessageBus",
    "MessageKind",
    "ProtocolStats",
    "run_distributed_cp_join",
    "run_distributed_join",
    "run_distributed_power_increase",
]
