"""Message-driven ``RecodeOnPowIncrease``.

Fig 5's protocol as run by the boosting node ``n``: collect the new
constraints from the nodes it now reaches (one request + reply per
out-neighbor — each replies with its color and the colors of its other
in-neighbors, which constrain ``n`` through CA2), then recode locally
and announce the new color if the old one conflicts.
"""

from __future__ import annotations

from repro.coloring.assignment import CodeAssignment
from repro.coloring.constraints import lowest_available_color
from repro.distributed.bus import MessageBus
from repro.distributed.message import Message, MessageKind
from repro.distributed.runtime import ProtocolStats
from repro.errors import ProtocolError
from repro.topology.static import DigraphLike
from repro.types import Color, NodeId

__all__ = ["run_distributed_power_increase"]


def run_distributed_power_increase(
    graph: DigraphLike,
    assignment: CodeAssignment,
    node: NodeId,
) -> ProtocolStats:
    """Execute RecodeOnPowIncrease for ``node`` over a message bus.

    ``graph`` must already reflect the enlarged range.  The returned
    changes equal the oracle
    :func:`repro.strategies.minim.plan_power_increase` outcome (tests
    assert equality); ``assignment`` is not mutated.
    """
    out_neighbors = sorted(graph.out_neighbors(node))
    in_neighbors = sorted(graph.in_neighbors(node))

    bus = MessageBus()
    constraints: set[Color] = set()
    replies: set[NodeId] = set()
    committed: set[NodeId] = set()

    def receiver_handler(v: NodeId):
        def handle(msg: Message):
            if msg.kind is MessageKind.CONSTRAINT_REQUEST:
                payload = {
                    "color": assignment[v],
                    "co_transmitters": [
                        (w, assignment[w])
                        for w in graph.in_neighbors(v)
                        if w != node
                    ],
                }
                return [Message(v, node, MessageKind.CONSTRAINT_REPLY, payload)]
            if msg.kind is MessageKind.COMMIT:
                committed.add(v)
                return []
            raise ProtocolError(f"receiver {v}: unexpected {msg}")

        return handle

    def n_handler(msg: Message):
        if msg.kind is MessageKind.CONSTRAINT_REPLY:
            replies.add(msg.src)
            constraints.add(msg.payload["color"])  # CA1 with the receiver
            for _w, c in msg.payload["co_transmitters"]:
                constraints.add(c)  # CA2 at the receiver
            return []
        raise ProtocolError(f"initiator {node}: unexpected {msg}")

    for v in out_neighbors:
        bus.register(v, receiver_handler(v))
    for v in in_neighbors:
        if v not in out_neighbors:
            bus.register(v, receiver_handler(v))
    bus.register(node, n_handler)

    # Phase 1: constraint collection from every node n now reaches.
    for v in out_neighbors:
        bus.send(Message(node, v, MessageKind.CONSTRAINT_REQUEST, {}))
    bus.run_to_quiescence()
    if replies != set(out_neighbors):
        raise ProtocolError("constraint collection incomplete")
    # In-neighbors constrain n via CA1 too; their colors are already in
    # n's local state (it hears them), so no messages are needed.
    for v in in_neighbors:
        constraints.add(assignment[v])

    current = assignment[node]
    rounds = 1
    changes: dict[NodeId, tuple[Color | None, Color]] = {}
    if current in constraints:
        new = lowest_available_color(constraints)
        changes[node] = (current, new)
        # Phase 2: announce the change to everyone who must track it.
        rounds += 1
        audience = sorted(set(out_neighbors) | set(in_neighbors))
        for v in audience:
            bus.send(Message(node, v, MessageKind.COMMIT, {"color": new}))
        bus.run_to_quiescence()
        if committed != set(audience):
            raise ProtocolError("announcement incomplete")

    return ProtocolStats(messages=bus.sent_total, rounds=rounds, changes=changes)
