"""Message-driven CP recoding: synchronous local-maximum election rounds.

Paper section 3: each node needing a color "continuously check[s] if it
is the highest ... -identity node in its vicinity (defined by itself and
nodes up to 2 hops away from it) that has not yet been assigned a
color", then takes the lowest available color.

We execute this as synchronous rounds: every uncolored node announces
itself, the local maxima select simultaneously (two simultaneous
selectors are never within each other's 2-hop vicinity, hence share no
constraints), and announce their choices.  Tests assert the outcome is
identical to the sequential descending-id oracle
(:func:`repro.strategies.cp.selection.reselect_colors`).

Message accounting is per-neighbor unicast (one message per undirected
neighbor per announcement), matching the convention of the oracle
strategies' analytic estimates.
"""

from __future__ import annotations

from repro.coloring.assignment import CodeAssignment
from repro.coloring.constraints import lowest_available_color
from repro.distributed.runtime import ProtocolStats
from repro.errors import ProtocolError
from repro.strategies.cp.join import duplicated_members
from repro.topology.conflicts import conflict_neighbors
from repro.topology.neighborhoods import join_partition, k_hop_neighbors
from repro.topology.static import DigraphLike
from repro.types import Color, NodeId

__all__ = ["run_distributed_cp_join"]

_MAX_ROUNDS = 10_000


def _undirected_degree(graph: DigraphLike, u: NodeId) -> int:
    return len(set(graph.in_neighbors(u)) | set(graph.out_neighbors(u)))


def run_distributed_cp_join(
    graph: DigraphLike,
    assignment: CodeAssignment,
    node: NodeId,
    *,
    vicinity_colors: bool = False,
) -> ProtocolStats:
    """Execute the CP join recoding for ``node`` as election rounds.

    Same contract as :func:`repro.strategies.cp.plan_cp_join`: ``graph``
    already contains ``node``; ``assignment`` holds every other node's
    color; nothing is mutated.
    """
    part = join_partition(graph, node)
    members = part.in_neighbors | part.out_neighbors
    reselect = duplicated_members(assignment, members) | {node}

    # Initial exchange: the joiner trades state with each 1-hop neighbor.
    messages = 2 * _undirected_degree(graph, node)

    working: dict[NodeId, Color] = {
        v: c for v, c in assignment.items() if v not in reselect
    }
    uncolored = set(reselect)
    vicinities = {u: k_hop_neighbors(graph, u, 2) for u in reselect}
    new_colors: dict[NodeId, Color] = {}
    rounds = 0

    while uncolored:
        rounds += 1
        if rounds > _MAX_ROUNDS:
            raise ProtocolError("CP election failed to make progress")
        # Uncolored nodes announce themselves to their neighborhoods.
        messages += sum(_undirected_degree(graph, u) for u in uncolored)
        # Local maxima: u selects iff no higher-id uncolored node sits in
        # its 2-hop vicinity.
        selectors = [
            u
            for u in uncolored
            if all(v < u for v in vicinities[u] if v in uncolored)
        ]
        if not selectors:
            raise ProtocolError("CP election deadlocked (no local maxima)")
        for u in selectors:
            if vicinity_colors:
                around = vicinities[u]
            else:
                around = conflict_neighbors(graph, u)
            taken = {working[v] for v in around if v in working}
            color = lowest_available_color(taken)
            working[u] = color
            new_colors[u] = color
            messages += _undirected_degree(graph, u)  # color announcement
        uncolored.difference_update(selectors)

    changes = {
        u: (assignment.get(u), c)
        for u, c in new_colors.items()
        if assignment.get(u) != c
    }
    return ProtocolStats(messages=messages, rounds=rounds, changes=changes)
