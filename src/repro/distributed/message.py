"""Protocol message types."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.types import NodeId

__all__ = ["Message", "MessageKind"]


class MessageKind(enum.Enum):
    """Message vocabulary of the recoding protocols."""

    #: n -> u: "send me your color and external constraints" (Fig 3 steps 1-2).
    CONSTRAINT_REQUEST = "constraint_request"
    #: u -> n: color + constraint payload.
    CONSTRAINT_REPLY = "constraint_reply"
    #: n -> u: "your new color is c, switch at commit".
    SET_COLOR = "set_color"
    #: u -> n: acknowledgment of SET_COLOR.
    COLOR_ACK = "color_ack"
    #: n -> everyone concerned: commit point reached ("agreeing on when
    #: to change color", Fig 3 step 6).
    COMMIT = "commit"
    #: CP: a reselecting node announces it is still uncolored.
    CP_UNCOLORED_ANNOUNCE = "cp_uncolored_announce"
    #: CP: a node announces its newly selected color to its vicinity.
    CP_COLOR_ANNOUNCE = "cp_color_announce"


@dataclass(frozen=True)
class Message:
    """One directed protocol message.

    ``payload`` is a small dict of plain values; the bus never inspects
    it.
    """

    src: NodeId
    dst: NodeId
    kind: MessageKind
    payload: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"{self.kind.value}: {self.src} -> {self.dst}"
