"""Shared protocol-run bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass

from repro.types import Color, NodeId

__all__ = ["ProtocolStats"]


@dataclass(frozen=True)
class ProtocolStats:
    """Cost accounting of one distributed protocol run.

    Attributes
    ----------
    messages:
        Total messages sent on the bus.
    rounds:
        Synchronous rounds (CP) or protocol phases (join: collect /
        disseminate / commit).
    changes:
        The recoding outcome, identical in shape to
        :attr:`repro.strategies.base.RecodeResult.changes`.
    """

    messages: int
    rounds: int
    changes: dict[NodeId, tuple[Color | None, Color]]
