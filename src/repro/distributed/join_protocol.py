"""Message-driven ``RecodeOnJoin`` / ``RecodeOnMove``.

The paper's protocol is *locally centralized* at the (re)configuring
node ``n`` (section 4.1): ``n`` collects constraints from its
from-neighbors (Fig 3 steps 1-2), solves the matching itself, then
disseminates the new colors and agrees on the switch point (step 6).

This module executes exactly that over the message bus.  Node ``n``'s
computation consumes only message payloads; each queried agent answers
from its own neighborhood state (the graph object stands in for the
radio layer and for the cached constraint lists that nodes maintain via
HELLO exchanges in [3] and this paper).

Messages:

* ``CONSTRAINT_REQUEST`` to every in-neighbor (step 1) and every
  out-only neighbor (step 2 — they relay the co-transmitter colors that
  constrain ``n`` through CA2 at their position);
* ``CONSTRAINT_REPLY`` with colors and constraints;
* ``SET_COLOR`` / ``COLOR_ACK`` / ``COMMIT`` (step 6).

Three phases: collect → disseminate → commit, so ``rounds == 3`` when
any neighbor recodes, else 1.
"""

from __future__ import annotations

from repro.coloring.assignment import CodeAssignment
from repro.coloring.constraints import forbidden_colors
from repro.distributed.bus import MessageBus
from repro.distributed.message import Message, MessageKind
from repro.distributed.runtime import ProtocolStats
from repro.errors import ProtocolError
from repro.strategies.minim.join import solve_v1_assignment
from repro.topology.neighborhoods import join_partition
from repro.topology.static import DigraphLike
from repro.types import Color, NodeId

__all__ = ["run_distributed_join"]


def run_distributed_join(
    graph: DigraphLike,
    assignment: CodeAssignment,
    node: NodeId,
    *,
    old_color_weight: int = 3,
    fresh_color_weight: int = 1,
) -> ProtocolStats:
    """Execute RecodeOnJoin/RecodeOnMove for ``node`` over a message bus.

    ``graph`` must already contain ``node`` at its (new) position.  The
    returned :class:`ProtocolStats.changes` matches the oracle
    :func:`repro.strategies.minim.plan_local_matching_recode` outcome
    (tests assert equality); ``assignment`` is not mutated.
    """
    part = join_partition(graph, node)
    members = sorted(part.in_neighbors)
    v1_list = members + [node]
    v1_set = frozenset(v1_list)
    out_only = sorted(part.three)

    bus = MessageBus()
    member_replies: dict[NodeId, dict] = {}
    relay_replies: dict[NodeId, dict] = {}
    acks: set[NodeId] = set()
    committed: set[NodeId] = set()

    def member_handler(u: NodeId):
        def handle(msg: Message):
            if msg.kind is MessageKind.CONSTRAINT_REQUEST:
                v1 = frozenset(msg.payload["v1"])
                # Answered from u's own neighborhood state: its color,
                # the colors its external conflict neighbors pin down,
                # and — when u also receives from n (u in 2n) — the
                # co-transmitters at u that constrain n via CA2.
                payload = {
                    "color": assignment[u],
                    "constraints": sorted(
                        forbidden_colors(graph, assignment, u, exclude=v1)
                    ),
                    "co_transmitters": [
                        (w, assignment[w])
                        for w in graph.in_neighbors(u)
                        if w != node
                    ],
                }
                return [Message(u, node, MessageKind.CONSTRAINT_REPLY, payload)]
            if msg.kind is MessageKind.SET_COLOR:
                return [
                    Message(u, node, MessageKind.COLOR_ACK, {"color": msg.payload["color"]})
                ]
            if msg.kind is MessageKind.COMMIT:
                committed.add(u)
                return []
            raise ProtocolError(f"member {u}: unexpected {msg}")

        return handle

    def out_neighbor_handler(v: NodeId):
        def handle(msg: Message):
            if msg.kind is MessageKind.CONSTRAINT_REQUEST:
                # v constrains n via CA1 (edge n -> v) and relays its
                # other in-neighbors, which constrain n via CA2 at v.
                payload = {
                    "color": assignment[v],
                    "co_transmitters": [
                        (w, assignment[w])
                        for w in graph.in_neighbors(v)
                        if w != node
                    ],
                }
                return [Message(v, node, MessageKind.CONSTRAINT_REPLY, payload)]
            raise ProtocolError(f"out-neighbor {v}: unexpected {msg}")

        return handle

    def n_handler(msg: Message):
        if msg.kind is MessageKind.CONSTRAINT_REPLY:
            if "constraints" in msg.payload:
                member_replies[msg.src] = msg.payload
            else:
                relay_replies[msg.src] = msg.payload
            return []
        if msg.kind is MessageKind.COLOR_ACK:
            acks.add(msg.src)
            return []
        raise ProtocolError(f"initiator {node}: unexpected {msg}")

    for u in members:
        bus.register(u, member_handler(u))
    for v in out_only:
        bus.register(v, out_neighbor_handler(v))
    bus.register(node, n_handler)

    # Phase 1: constraint collection (Fig 3 steps 1-2).
    rounds = 1
    v1_payload = {"v1": sorted(v1_set)}
    for u in members:
        bus.send(Message(node, u, MessageKind.CONSTRAINT_REQUEST, v1_payload))
    for v in out_only:
        bus.send(Message(node, v, MessageKind.CONSTRAINT_REQUEST, {}))
    bus.run_to_quiescence()
    if set(member_replies) != set(members) or set(relay_replies) != set(out_only):
        raise ProtocolError("constraint collection incomplete")

    # Assemble n's external constraints from the payloads alone:
    # CA1 with out-only neighbors, CA2 with non-V1 co-transmitters at
    # every receiver of n (members in 2n relayed theirs too).
    n_external: set[Color] = {relay_replies[v]["color"] for v in out_only}
    for payload in relay_replies.values():
        for w, c in payload["co_transmitters"]:
            if w not in v1_set:
                n_external.add(c)
    for u in members:
        if u in part.two:  # n transmits into u, so u's senders conflict with n
            for w, c in member_replies[u]["co_transmitters"]:
                if w not in v1_set:
                    n_external.add(c)

    old_colors: dict[NodeId, Color | None] = {
        u: member_replies[u]["color"] for u in members
    }
    old_colors[node] = assignment.get(node)
    constraints: dict[NodeId, set[Color]] = {
        u: set(member_replies[u]["constraints"]) for u in members
    }
    constraints[node] = n_external

    new_colors, _max_seen = solve_v1_assignment(
        v1_list,
        old_colors,
        constraints,
        old_color_weight=old_color_weight,
        fresh_color_weight=fresh_color_weight,
    )
    changes = {
        u: (old_colors.get(u), c) for u, c in new_colors.items() if old_colors.get(u) != c
    }

    # Phase 2: dissemination + acks (Fig 3 step 6).
    recoded_members = [u for u in changes if u != node]
    if recoded_members:
        rounds += 1
        for u in recoded_members:
            bus.send(Message(node, u, MessageKind.SET_COLOR, {"color": new_colors[u]}))
        bus.run_to_quiescence()
        if acks != set(recoded_members):
            raise ProtocolError("dissemination incomplete")
        # Phase 3: commit ("agreeing on when to change color").
        rounds += 1
        for u in recoded_members:
            bus.send(Message(node, u, MessageKind.COMMIT, {}))
        bus.run_to_quiescence()
        if committed != set(recoded_members):
            raise ProtocolError("commit incomplete")

    return ProtocolStats(messages=bus.sent_total, rounds=rounds, changes=changes)
