"""FIFO message bus with delivery accounting.

The bus models a reliable, order-preserving network (the paper's
termination theorems assume "messages are eventually delivered").
Protocols enqueue messages and a driver loop pops them in global FIFO
order, dispatching to per-node handlers.  The bus counts every send,
overall and per kind — the raw material for the distributed-overhead
bench.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterable

from repro.distributed.message import Message, MessageKind
from repro.errors import ProtocolError
from repro.types import NodeId

__all__ = ["MessageBus"]

#: A handler consumes a message and may emit replies.
Handler = Callable[[Message], Iterable[Message]]


class MessageBus:
    """Reliable FIFO transport between node agents."""

    def __init__(self) -> None:
        self._queue: deque[Message] = deque()
        self._handlers: dict[NodeId, Handler] = {}
        self.sent_total = 0
        self.sent_by_kind: dict[MessageKind, int] = {}

    def register(self, node_id: NodeId, handler: Handler) -> None:
        """Attach the message handler for ``node_id``."""
        if node_id in self._handlers:
            raise ProtocolError(f"node {node_id} already registered on the bus")
        self._handlers[node_id] = handler

    def unregister(self, node_id: NodeId) -> None:
        """Detach ``node_id``'s handler (e.g., on leave)."""
        self._handlers.pop(node_id, None)

    def send(self, msg: Message) -> None:
        """Enqueue ``msg`` for delivery."""
        self._queue.append(msg)
        self.sent_total += 1
        self.sent_by_kind[msg.kind] = self.sent_by_kind.get(msg.kind, 0) + 1

    def send_all(self, msgs: Iterable[Message]) -> None:
        """Enqueue several messages in order."""
        for m in msgs:
            self.send(m)

    def pending(self) -> int:
        """Number of undelivered messages."""
        return len(self._queue)

    def run_to_quiescence(self, *, max_deliveries: int = 1_000_000) -> int:
        """Deliver messages (FIFO) until the queue drains.

        Returns the number of deliveries.  ``max_deliveries`` guards
        against protocol livelock; exceeding it raises
        :class:`ProtocolError`.
        """
        delivered = 0
        while self._queue:
            if delivered >= max_deliveries:
                raise ProtocolError(
                    f"protocol did not quiesce within {max_deliveries} deliveries"
                )
            msg = self._queue.popleft()
            handler = self._handlers.get(msg.dst)
            if handler is None:
                raise ProtocolError(f"message to unregistered node: {msg}")
            replies = handler(msg)
            if replies:
                self.send_all(replies)
            delivered += 1
        return delivered
