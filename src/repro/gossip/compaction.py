"""Quiet-period gossip recoloring to recover code reuse.

Paper section 6: "Future work will focus on a recoding strategy that
seeks to maximize the network-wide code reuse by using a local gossiping
strategy ... during the (possibly significantly long) periods when no
nodes connect to, move about or increase their power within the ad-hoc
network."

We implement that extension.  Each gossip round visits the nodes in a
random order; a visited node asks its conflict neighborhood for their
colors (local gossip) and, if a strictly lower color is free, descends
to the lowest free one.  Properties (tested):

* CA1/CA2 validity is preserved by construction;
* every individual move strictly lowers a node's color, so the maximum
  color index is non-increasing and the process terminates;
* on quiescence, no node can lower its color unilaterally (a local
  Grundy/greedy fixpoint).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.coloring.assignment import CodeAssignment
from repro.coloring.constraints import forbidden_colors, lowest_available_color
from repro.topology.conflicts import conflict_neighbors
from repro.topology.static import DigraphLike
from repro.types import Color, NodeId

__all__ = ["CompactionResult", "gossip_compaction"]


@dataclass(frozen=True)
class CompactionResult:
    """Outcome of a gossip compaction run.

    Attributes
    ----------
    assignment:
        The compacted assignment (the input is not mutated).
    recolors:
        ``{node: (old, new)}`` for every descent taken, last-wins.
    rounds:
        Full passes executed, including the final quiescent pass.
    messages:
        Gossip cost: one query+reply per conflict neighbor probed, plus
        one announcement per neighbor on every descent.
    max_color_series:
        Max color index after each round (non-increasing).
    """

    assignment: CodeAssignment
    recolors: dict[NodeId, tuple[Color, Color]]
    rounds: int
    messages: int
    max_color_series: list[int]


def gossip_compaction(
    graph: DigraphLike,
    assignment: CodeAssignment,
    *,
    rng: np.random.Generator | None = None,
    max_rounds: int = 100,
) -> CompactionResult:
    """Run gossip rounds until quiescent (or ``max_rounds``).

    With ``rng=None`` nodes are visited in ascending id order each
    round (deterministic); otherwise each round uses a fresh random
    permutation.
    """
    if max_rounds < 1:
        raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
    work = assignment.copy()
    recolors: dict[NodeId, tuple[Color, Color]] = {}
    messages = 0
    series: list[int] = []
    nodes = [v for v in graph.node_ids() if v in work]

    rounds = 0
    for _ in range(max_rounds):
        rounds += 1
        order = list(nodes)
        if rng is not None:
            order = [nodes[i] for i in rng.permutation(len(nodes))]
        changed = False
        for u in order:
            neighbors = conflict_neighbors(graph, u)
            messages += 2 * len(neighbors)  # query + reply gossip
            taken = forbidden_colors(graph, work, u)
            candidate = lowest_available_color(taken)
            if candidate < work[u]:
                old = work[u]
                work.assign(u, candidate)
                first_old = recolors[u][0] if u in recolors else old
                recolors[u] = (first_old, candidate)
                messages += len(neighbors)  # announce the descent
                changed = True
        series.append(work.max_color())
        if not changed:
            break
    return CompactionResult(
        assignment=work,
        recolors=recolors,
        rounds=rounds,
        messages=messages,
        max_color_series=series,
    )
