"""Gossip-based code compaction (the paper's section 6 future work)."""

from repro.gossip.compaction import CompactionResult, gossip_compaction
from repro.gossip.kempe import kempe_compaction

__all__ = ["CompactionResult", "gossip_compaction", "kempe_compaction"]
