"""Kempe-style pairwise color exchange for deeper quiet-period compaction.

:mod:`repro.gossip.compaction` only lets a node *descend* to a free
lower color, which stalls when the top-color holder's low colors are all
taken.  The classic escape is a **Kempe exchange**: two conflicting
nodes (or a node and a color class) swap colors when the swap is locally
consistent.  We implement the simplest distributed-plausible form:

* a *swap* between two conflict-neighbors ``u`` (high color) and ``v``
  (low color) is applied when recoloring ``u -> c_v`` and ``v -> c_u``
  violates no constraint of either — a 2-node gossip transaction;
* a swap is kept only when it *unlocks* a descent (the peer that
  inherited the high color immediately drops below it), so
  every accepted transaction strictly decreases ``(max color, number of
  top-color holders, Σ colors)`` lexicographically and the process
  terminates.

This remains within the paper's §6 brief ("maximize the network-wide
code reuse by using a local gossiping strategy") while strictly
dominating the descent-only compaction (tests assert it never ends
worse).
"""

from __future__ import annotations

import numpy as np

from repro.coloring.assignment import CodeAssignment
from repro.coloring.constraints import forbidden_colors, lowest_available_color
from repro.gossip.compaction import CompactionResult, gossip_compaction
from repro.topology.conflicts import conflict_neighbors
from repro.topology.static import DigraphLike
from repro.types import NodeId

__all__ = ["kempe_compaction"]

_MAX_PASSES = 100


def _try_swap_then_descend(
    graph: DigraphLike,
    work: CodeAssignment,
    u: NodeId,
) -> tuple[bool, int]:
    """Try a swap at top-holder ``u`` that shrinks the color sum.

    Returns ``(changed, messages)``.
    """
    messages = 0
    cu = work[u]
    neighbors = sorted(conflict_neighbors(graph, u))
    messages += 2 * len(neighbors)  # u gossips state with its neighborhood
    for v in neighbors:
        cv = work[v]
        if cv >= cu:
            continue
        # Would u fit at cv and v at cu, given everyone else?
        u_forbidden = forbidden_colors(graph, work, u, exclude={v})
        v_forbidden = forbidden_colors(graph, work, v, exclude={u})
        if cv in u_forbidden or cu in v_forbidden:
            continue
        # Tentatively swap, then see whether u can now descend strictly
        # below its original color (otherwise the swap is pointless
        # churn and is rolled back).
        work.assign(u, cv)
        work.assign(v, cu)
        messages += 2  # the swap transaction
        after = lowest_available_color(forbidden_colors(graph, work, v))
        if after < cu:
            work.assign(v, after)
            messages += len(conflict_neighbors(graph, v))  # announce
            return True, messages
        work.assign(u, cu)
        work.assign(v, cv)
        messages += 2  # rollback notification
    return False, messages


def kempe_compaction(
    graph: DigraphLike,
    assignment: CodeAssignment,
    *,
    rng: np.random.Generator | None = None,
    max_rounds: int = _MAX_PASSES,
) -> CompactionResult:
    """Descent compaction strengthened with pairwise Kempe swaps.

    Alternates: (1) run plain descent gossip to quiescence; (2) for each
    current top-color holder, attempt one swap-then-descend transaction.
    Stops when a full alternation changes nothing.  The result's
    ``max_color`` is never worse than plain
    :func:`~repro.gossip.compaction.gossip_compaction`.
    """
    base = gossip_compaction(graph, assignment, rng=rng, max_rounds=max_rounds)
    work = base.assignment.copy()
    messages = base.messages
    series = list(base.max_color_series)
    rounds = base.rounds

    for _ in range(max_rounds):
        rounds += 1
        top = work.max_color()
        holders = sorted(v for v, c in work.items() if c == top)
        changed = False
        for u in holders:
            swapped, msg = _try_swap_then_descend(graph, work, u)
            messages += msg
            changed = changed or swapped
        if changed:
            # Swaps may open descents elsewhere; re-run plain gossip.
            follow = gossip_compaction(graph, work, rng=rng, max_rounds=max_rounds)
            work = follow.assignment
            messages += follow.messages
            rounds += follow.rounds
        series.append(work.max_color())
        if not changed:
            break

    recolors = {
        v: (assignment[v], c) for v, c in work.items() if assignment[v] != c
    }
    return CompactionResult(
        assignment=work,
        recolors=recolors,
        rounds=rounds,
        messages=messages,
        max_color_series=series,
    )
