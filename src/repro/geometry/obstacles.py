"""Rectangular obstacles and line-of-sight tests.

The paper notes the model "can be easily generalized for the
non-free-space propagation case where, due to obstacles, although
``d_ij <= r_i``, ``(v_i, v_j)`` is not an edge" (section 2).  This module
provides that generalization: axis-aligned rectangular obstacles that
block the line of sight between two points.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["RectObstacle", "segment_intersects_rect", "los_mask"]


@dataclass(frozen=True)
class RectObstacle:
    """Axis-aligned rectangle ``[x_min, x_max] x [y_min, y_max]``.

    A transmission is blocked when the open segment between transmitter
    and receiver passes through the rectangle's interior.
    """

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if not (self.x_min < self.x_max and self.y_min < self.y_max):
            raise ConfigurationError(
                f"degenerate obstacle: ({self.x_min}, {self.y_min}) .. ({self.x_max}, {self.y_max})"
            )

    def contains(self, x: float, y: float) -> bool:
        """Whether ``(x, y)`` lies inside the closed rectangle."""
        return self.x_min <= x <= self.x_max and self.y_min <= y <= self.y_max


def segment_intersects_rect(p: np.ndarray, q: np.ndarray, rect: RectObstacle) -> bool:
    """Whether segment ``p->q`` intersects the closed rectangle ``rect``.

    Uses the slab (Liang–Barsky) clipping test: the segment intersects the
    rectangle iff the parameter interval where it is inside all four slabs
    is non-empty.
    """
    p = np.asarray(p, dtype=np.float64).reshape(2)
    q = np.asarray(q, dtype=np.float64).reshape(2)
    d = q - p
    t0, t1 = 0.0, 1.0
    for axis, (lo, hi) in enumerate(((rect.x_min, rect.x_max), (rect.y_min, rect.y_max))):
        if d[axis] == 0.0:
            if p[axis] < lo or p[axis] > hi:
                return False
            continue
        ta = (lo - p[axis]) / d[axis]
        tb = (hi - p[axis]) / d[axis]
        if ta > tb:
            ta, tb = tb, ta
        t0 = max(t0, ta)
        t1 = min(t1, tb)
        if t0 > t1:
            return False
    return True


def los_mask(
    source: np.ndarray,
    targets: np.ndarray,
    obstacles: tuple[RectObstacle, ...],
) -> np.ndarray:
    """Boolean mask: which ``targets`` have line of sight from ``source``.

    ``targets`` is ``(n, 2)``.  With no obstacles every entry is True.
    This is a per-target Python loop over a typically tiny obstacle list;
    obstacle scenarios are illustrative, not hot paths.
    """
    targets = np.asarray(targets, dtype=np.float64)
    out = np.ones(len(targets), dtype=bool)
    if not obstacles:
        return out
    src = np.asarray(source, dtype=np.float64).reshape(2)
    for i, tgt in enumerate(targets):
        for rect in obstacles:
            if segment_intersects_rect(src, tgt, rect):
                out[i] = False
                break
    return out
