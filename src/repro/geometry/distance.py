"""Vectorized Euclidean distance kernels.

These are the hot paths of topology maintenance; they are fully
vectorized (no per-pair Python loops) per the scientific-python
optimization guidance.
"""

from __future__ import annotations

import numpy as np

__all__ = ["distances_from", "pairwise_distances", "within_disc"]


def pairwise_distances(positions: np.ndarray) -> np.ndarray:
    """Return the dense ``(n, n)`` Euclidean distance matrix.

    Uses broadcasting (``(n,1,2) - (1,n,2)``); memory is O(n^2), which is
    fine at the paper's scales (N <= a few hundred).
    """
    pos = np.asarray(positions, dtype=np.float64)
    diff = pos[:, None, :] - pos[None, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


def distances_from(positions: np.ndarray, point: np.ndarray) -> np.ndarray:
    """Return the ``(n,)`` vector of distances from ``point`` to each row.

    ``point`` is a length-2 array-like.
    """
    pos = np.asarray(positions, dtype=np.float64)
    p = np.asarray(point, dtype=np.float64).reshape(2)
    diff = pos - p
    return np.sqrt(np.einsum("ij,ij->i", diff, diff))


def within_disc(
    positions: np.ndarray,
    center: np.ndarray,
    radius: float,
) -> np.ndarray:
    """Boolean mask of rows of ``positions`` within ``radius`` of ``center``.

    The disc is closed (``<=``), matching the paper's edge rule
    ``d_ij <= r_i``.  Comparison is done on squared distances to avoid the
    square root.
    """
    pos = np.asarray(positions, dtype=np.float64)
    c = np.asarray(center, dtype=np.float64).reshape(2)
    diff = pos - c
    return np.einsum("ij,ij->i", diff, diff) <= float(radius) * float(radius)
