"""Geometry substrate: 2-D kernels used by the topology layer.

Everything here is a pure function over NumPy arrays (positions are
``(n, 2)`` ``float64`` arrays) or a small, self-contained data structure.
The topology layer builds the ad-hoc digraph on top of these kernels.
"""

from repro.geometry.distance import (
    distances_from,
    pairwise_distances,
    within_disc,
)
from repro.geometry.grid_index import UniformGridIndex
from repro.geometry.obstacles import RectObstacle, segment_intersects_rect
from repro.geometry.point import (
    as_position_array,
    displace,
    random_directions,
    random_positions,
)

__all__ = [
    "RectObstacle",
    "UniformGridIndex",
    "as_position_array",
    "displace",
    "distances_from",
    "pairwise_distances",
    "random_directions",
    "random_positions",
    "segment_intersects_rect",
    "within_disc",
]
