"""Uniform-grid spatial index for disc queries.

For the paper's network sizes a brute-force scan is adequate, but a
spatial index keeps per-event topology updates near O(neighborhood) for
larger deployments and is exercised by the microbenchmarks.  The index
maps grid cells to the set of item ids whose point lies in the cell; disc
queries enumerate candidate cells and filter exactly.
"""

from __future__ import annotations

import math
from collections.abc import Iterator

import numpy as np

from repro.errors import ConfigurationError, UnknownNodeError

__all__ = ["UniformGridIndex"]

#: Cell-enumeration guard ring (see :meth:`UniformGridIndex.candidates_in_box`).
_GUARD_CELLS = 1


class UniformGridIndex:
    """Point index over a uniform grid of square cells.

    Parameters
    ----------
    cell_size:
        Side length of each grid cell.  A good default is the typical
        query radius, so a disc query touches O(1) cells.

    Notes
    -----
    Items are identified by integer ids.  The grid is unbounded (cells are
    created lazily in a dict), so points may lie anywhere in the plane.
    """

    def __init__(self, cell_size: float) -> None:
        if not (cell_size > 0 and math.isfinite(cell_size)):
            raise ConfigurationError(f"cell_size must be positive and finite, got {cell_size}")
        self._cell_size = float(cell_size)
        self._cells: dict[tuple[int, int], set[int]] = {}
        self._points: dict[int, tuple[float, float]] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def cell_size(self) -> float:
        """Side length of each grid cell."""
        return self._cell_size

    def __len__(self) -> int:
        return len(self._points)

    def __contains__(self, item_id: int) -> bool:
        return item_id in self._points

    def __iter__(self) -> Iterator[int]:
        return iter(self._points)

    def position_of(self, item_id: int) -> tuple[float, float]:
        """Return the stored position of ``item_id``."""
        try:
            return self._points[item_id]
        except KeyError:
            raise UnknownNodeError(item_id) from None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _cell_of(self, x: float, y: float) -> tuple[int, int]:
        return (math.floor(x / self._cell_size), math.floor(y / self._cell_size))

    def insert(self, item_id: int, x: float, y: float) -> None:
        """Insert a new item.  Re-inserting an existing id moves it."""
        if item_id in self._points:
            self.move(item_id, x, y)
            return
        cell = self._cell_of(x, y)
        self._cells.setdefault(cell, set()).add(item_id)
        self._points[item_id] = (float(x), float(y))

    def remove(self, item_id: int) -> None:
        """Remove an item; raises :class:`UnknownNodeError` if absent."""
        try:
            x, y = self._points.pop(item_id)
        except KeyError:
            raise UnknownNodeError(item_id) from None
        cell = self._cell_of(x, y)
        members = self._cells[cell]
        members.discard(item_id)
        if not members:
            del self._cells[cell]

    def move(self, item_id: int, x: float, y: float) -> None:
        """Update an item's position, relocating it between cells if needed."""
        if item_id not in self._points:
            raise UnknownNodeError(item_id)
        old_cell = self._cell_of(*self._points[item_id])
        new_cell = self._cell_of(x, y)
        if old_cell != new_cell:
            members = self._cells[old_cell]
            members.discard(item_id)
            if not members:
                del self._cells[old_cell]
            self._cells.setdefault(new_cell, set()).add(item_id)
        self._points[item_id] = (float(x), float(y))

    def copy(self) -> "UniformGridIndex":
        """Independent copy (same cell size, copied cells and points)."""
        g = UniformGridIndex(self._cell_size)
        g._cells = {cell: set(members) for cell, members in self._cells.items()}
        g._points = dict(self._points)
        return g

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def candidates_in_box(self, x: float, y: float, radius: float) -> list[int]:
        """Ids of all items in cells overlapping the disc's bounding box.

        A cheap *superset* of :meth:`query_disc` (no distance filtering):
        callers that already hold aligned position arrays can run their
        own vectorized exact filter without touching the per-item dict.
        One extra cell ring guards the exact-boundary corner cases (e.g.
        squared distances that underflow to 0.0 for points a denormal
        away from the query on the other side of a cell border).
        """
        if radius < 0:
            raise ConfigurationError(f"radius must be non-negative, got {radius}")
        cs = self._cell_size
        cx_lo = math.floor((x - radius) / cs) - _GUARD_CELLS
        cx_hi = math.floor((x + radius) / cs) + _GUARD_CELLS
        cy_lo = math.floor((y - radius) / cs) - _GUARD_CELLS
        cy_hi = math.floor((y + radius) / cs) + _GUARD_CELLS
        candidates: list[int] = []
        cells = self._cells
        if (cx_hi - cx_lo + 1) * (cy_hi - cy_lo + 1) > len(cells):
            # Huge query relative to the occupancy: scanning the occupied
            # cells beats enumerating the (mostly empty) cell lattice.
            for (cx, cy), members in cells.items():
                if cx_lo <= cx <= cx_hi and cy_lo <= cy <= cy_hi:
                    candidates.extend(members)
            return candidates
        for cx in range(cx_lo, cx_hi + 1):
            for cy in range(cy_lo, cy_hi + 1):
                members = cells.get((cx, cy))
                if members:
                    candidates.extend(members)
        return candidates

    def query_disc(self, x: float, y: float, radius: float) -> list[int]:
        """Return ids of all items within ``radius`` (closed) of ``(x, y)``.

        Candidates are gathered from the overlapping cells, then filtered
        exactly with a vectorized squared-distance test.
        """
        candidates = self.candidates_in_box(x, y, radius)
        if not candidates:
            return []
        pts = np.asarray([self._points[i] for i in candidates], dtype=np.float64)
        diff = pts - np.asarray([x, y], dtype=np.float64)
        mask = np.einsum("ij,ij->i", diff, diff) <= radius * radius
        return [item for item, ok in zip(candidates, mask) if ok]

    def query_disc_count(self, x: float, y: float, radius: float) -> int:
        """Return the number of items within the disc (exact)."""
        return len(self.query_disc(x, y, radius))
