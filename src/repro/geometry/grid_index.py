"""Uniform-grid spatial indexes for disc queries.

For the paper's network sizes a brute-force scan is adequate, but a
spatial index keeps per-event topology updates near O(neighborhood) for
larger deployments and is exercised by the microbenchmarks.  Two
implementations share the cell-enumeration scheme:

* :class:`UniformGridIndex` — the object-level index of the dict
  conflict core.  Cells map to *sets of item ids*; queries return id
  lists that callers translate back to array slots through a dict.
* :class:`SlotGridIndex` — the array-native index of the array conflict
  core (``REPRO_ARRAY``).  Cells map to *contiguous numpy arrays of
  node slots* (the row indices of the digraph's adjacency block), so a
  candidate query is a handful of dict lookups plus one
  ``np.concatenate`` — no per-item Python loop and no id→slot
  translation on the hot path.

Both grids are unbounded (cells are created lazily), use the same cell
geometry for a given ``cell_size``, and return *supersets* of the exact
disc — the caller applies the exact distance filter vectorized — so the
digraph produces byte-identical edges regardless of which index backs
it.
"""

from __future__ import annotations

import math
from collections.abc import Iterator

import numpy as np

from repro.errors import ConfigurationError, UnknownNodeError

__all__ = ["SlotGridIndex", "UniformGridIndex"]

#: Cell-enumeration guard ring (see :meth:`UniformGridIndex.candidates_in_box`).
_GUARD_CELLS = 1

#: Initial per-cell bucket capacity of :class:`SlotGridIndex`.
_BUCKET_CAPACITY = 8


class UniformGridIndex:
    """Point index over a uniform grid of square cells.

    Parameters
    ----------
    cell_size:
        Side length of each grid cell.  A good default is the typical
        query radius, so a disc query touches O(1) cells.

    Notes
    -----
    Items are identified by integer ids.  The grid is unbounded (cells are
    created lazily in a dict), so points may lie anywhere in the plane.
    """

    def __init__(self, cell_size: float) -> None:
        if not (cell_size > 0 and math.isfinite(cell_size)):
            raise ConfigurationError(f"cell_size must be positive and finite, got {cell_size}")
        self._cell_size = float(cell_size)
        self._cells: dict[tuple[int, int], set[int]] = {}
        self._points: dict[int, tuple[float, float]] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def cell_size(self) -> float:
        """Side length of each grid cell."""
        return self._cell_size

    def __len__(self) -> int:
        return len(self._points)

    def __contains__(self, item_id: int) -> bool:
        return item_id in self._points

    def __iter__(self) -> Iterator[int]:
        return iter(self._points)

    def position_of(self, item_id: int) -> tuple[float, float]:
        """Return the stored position of ``item_id``."""
        try:
            return self._points[item_id]
        except KeyError:
            raise UnknownNodeError(item_id) from None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _cell_of(self, x: float, y: float) -> tuple[int, int]:
        return (math.floor(x / self._cell_size), math.floor(y / self._cell_size))

    def insert(self, item_id: int, x: float, y: float) -> None:
        """Insert a new item.  Re-inserting an existing id moves it."""
        if item_id in self._points:
            self.move(item_id, x, y)
            return
        cell = self._cell_of(x, y)
        self._cells.setdefault(cell, set()).add(item_id)
        self._points[item_id] = (float(x), float(y))

    def remove(self, item_id: int) -> None:
        """Remove an item; raises :class:`UnknownNodeError` if absent."""
        try:
            x, y = self._points.pop(item_id)
        except KeyError:
            raise UnknownNodeError(item_id) from None
        cell = self._cell_of(x, y)
        members = self._cells[cell]
        members.discard(item_id)
        if not members:
            del self._cells[cell]

    def move(self, item_id: int, x: float, y: float) -> None:
        """Update an item's position, relocating it between cells if needed."""
        if item_id not in self._points:
            raise UnknownNodeError(item_id)
        old_cell = self._cell_of(*self._points[item_id])
        new_cell = self._cell_of(x, y)
        if old_cell != new_cell:
            members = self._cells[old_cell]
            members.discard(item_id)
            if not members:
                del self._cells[old_cell]
            self._cells.setdefault(new_cell, set()).add(item_id)
        self._points[item_id] = (float(x), float(y))

    def copy(self) -> "UniformGridIndex":
        """Independent copy (same cell size, copied cells and points)."""
        g = UniformGridIndex(self._cell_size)
        g._cells = {cell: set(members) for cell, members in self._cells.items()}
        g._points = dict(self._points)
        return g

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def candidates_in_box(self, x: float, y: float, radius: float) -> list[int]:
        """Ids of all items in cells overlapping the disc's bounding box.

        A cheap *superset* of :meth:`query_disc` (no distance filtering):
        callers that already hold aligned position arrays can run their
        own vectorized exact filter without touching the per-item dict.
        One extra cell ring guards the exact-boundary corner cases (e.g.
        squared distances that underflow to 0.0 for points a denormal
        away from the query on the other side of a cell border).
        """
        if radius < 0:
            raise ConfigurationError(f"radius must be non-negative, got {radius}")
        cs = self._cell_size
        cx_lo = math.floor((x - radius) / cs) - _GUARD_CELLS
        cx_hi = math.floor((x + radius) / cs) + _GUARD_CELLS
        cy_lo = math.floor((y - radius) / cs) - _GUARD_CELLS
        cy_hi = math.floor((y + radius) / cs) + _GUARD_CELLS
        candidates: list[int] = []
        cells = self._cells
        if (cx_hi - cx_lo + 1) * (cy_hi - cy_lo + 1) > len(cells):
            # Huge query relative to the occupancy: scanning the occupied
            # cells beats enumerating the (mostly empty) cell lattice.
            for (cx, cy), members in cells.items():
                if cx_lo <= cx <= cx_hi and cy_lo <= cy <= cy_hi:
                    candidates.extend(members)
            return candidates
        for cx in range(cx_lo, cx_hi + 1):
            for cy in range(cy_lo, cy_hi + 1):
                members = cells.get((cx, cy))
                if members:
                    candidates.extend(members)
        return candidates

    def query_disc(self, x: float, y: float, radius: float) -> list[int]:
        """Return ids of all items within ``radius`` (closed) of ``(x, y)``.

        Candidates are gathered from the overlapping cells, then filtered
        exactly with a vectorized squared-distance test.
        """
        candidates = self.candidates_in_box(x, y, radius)
        if not candidates:
            return []
        pts = np.asarray([self._points[i] for i in candidates], dtype=np.float64)
        diff = pts - np.asarray([x, y], dtype=np.float64)
        mask = np.einsum("ij,ij->i", diff, diff) <= radius * radius
        return [item for item, ok in zip(candidates, mask) if ok]

    def query_disc_count(self, x: float, y: float, radius: float) -> int:
        """Return the number of items within the disc (exact)."""
        return len(self.query_disc(x, y, radius))


class _SlotBucket:
    """A growable, contiguous array of node slots (one grid cell).

    Membership is unordered; removal swap-deletes so both insert and
    remove are amortized O(1).  The backing array doubles on demand and
    never shrinks — cells oscillate around a stable occupancy in the
    mobility workloads, so churn does not reallocate.
    """

    __slots__ = ("data", "count")

    def __init__(self, capacity: int = _BUCKET_CAPACITY) -> None:
        self.data = np.empty(capacity, dtype=np.intp)
        self.count = 0

    def append(self, slot: int) -> int:
        """Add ``slot``; returns its position within the bucket."""
        if self.count == len(self.data):
            grown = np.empty(2 * len(self.data), dtype=np.intp)
            grown[: self.count] = self.data[: self.count]
            self.data = grown
        pos = self.count
        self.data[pos] = slot
        self.count = pos + 1
        return pos

    def swap_delete(self, pos: int) -> int:
        """Remove the entry at ``pos``; returns the slot moved into it.

        The last entry fills the hole (or ``-1`` if ``pos`` was last),
        so the caller can update that slot's position record.
        """
        last = self.count - 1
        moved = -1
        if pos != last:
            moved = int(self.data[last])
            self.data[pos] = moved
        self.count = last
        return moved

    def copy(self) -> "_SlotBucket":
        clone = _SlotBucket(len(self.data))
        clone.data[: self.count] = self.data[: self.count]
        clone.count = self.count
        return clone


class SlotGridIndex:
    """Array-native uniform grid over node *slots* (array-core fast path).

    Where :class:`UniformGridIndex` keys items by stable node id, this
    index keys them by their **slot** — the row index of the node in the
    digraph's flat adjacency/position arrays.  Candidate queries then
    return a numpy index array that can be applied directly to those
    arrays (``pos[cand]``, ``ranges[cand]``) with zero per-item Python
    work.

    The digraph owns the slot lifecycle: on swap-delete removal it calls
    :meth:`rename` so the grid tracks the slot renumbering, and it keeps
    positions itself — the grid stores only cell membership (per-slot
    packed cell key + position within the cell bucket), making every
    mutation O(1).

    Invariants (relied on by ``AdHocDigraph``):

    * slots present in the grid are exactly ``0..len(self)-1`` whenever
      the digraph's active block is fully inserted;
    * :meth:`candidate_slots` returns a *superset* of the exact disc,
      identical in membership to what :class:`UniformGridIndex` returns
      for the same points and ``cell_size`` (cell geometry is shared),
      so the two conflict cores compute byte-identical edge masks.
    """

    def __init__(self, cell_size: float) -> None:
        if not (cell_size > 0 and math.isfinite(cell_size)):
            raise ConfigurationError(f"cell_size must be positive and finite, got {cell_size}")
        self._cell_size = float(cell_size)
        self._cells: dict[tuple[int, int], _SlotBucket] = {}
        # Grow-only bounding box of cells ever occupied (may be stale
        # after removals, which only makes the covers-everything
        # short-circuit in candidate_slots more conservative).
        self._bbox: list[int] | None = None  # [cx_lo, cx_hi, cy_lo, cy_hi]
        cap = _BUCKET_CAPACITY
        # Per-slot membership records, amortized-doubling like the
        # digraph's own arrays: which cell the slot sits in and where
        # inside that cell's bucket (for O(1) removal).
        self._cx = np.zeros(cap, dtype=np.int64)
        self._cy = np.zeros(cap, dtype=np.int64)
        self._pos_in_cell = np.full(cap, -1, dtype=np.int64)
        self._count = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def cell_size(self) -> float:
        """Side length of each grid cell."""
        return self._cell_size

    @property
    def cell_count(self) -> int:
        """Number of occupied cells.

        Callers use this as a selectivity signal: a disc query touches
        O(ring) cells, so when the whole population fits in about that
        many cells no query can exclude much and a vectorized full scan
        is cheaper than gathering candidates.
        """
        return len(self._cells)

    def __len__(self) -> int:
        return self._count

    def __contains__(self, slot: int) -> bool:
        return 0 <= slot < len(self._pos_in_cell) and self._pos_in_cell[slot] >= 0

    def _cell_of(self, x: float, y: float) -> tuple[int, int]:
        return (math.floor(x / self._cell_size), math.floor(y / self._cell_size))

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _ensure_capacity(self, slot: int) -> None:
        cap = len(self._pos_in_cell)
        if slot < cap:
            return
        new_cap = cap
        while new_cap <= slot:
            new_cap *= 2
        for name in ("_cx", "_cy"):
            old = getattr(self, name)
            grown = np.zeros(new_cap, dtype=np.int64)
            grown[:cap] = old
            setattr(self, name, grown)
        pic = np.full(new_cap, -1, dtype=np.int64)
        pic[:cap] = self._pos_in_cell
        self._pos_in_cell = pic

    def insert(self, slot: int, x: float, y: float) -> None:
        """Insert ``slot`` at ``(x, y)``; re-inserting moves it."""
        if slot < 0:
            raise ConfigurationError(f"slot must be non-negative, got {slot}")
        if slot in self:
            self.move(slot, x, y)
            return
        self._ensure_capacity(slot)
        cell = self._cell_of(x, y)
        bucket = self._cells.get(cell)
        if bucket is None:
            bucket = self._cells[cell] = _SlotBucket()
        self._pos_in_cell[slot] = bucket.append(slot)
        self._cx[slot], self._cy[slot] = cell
        self._count += 1
        self._grow_bbox(cell)

    def move(self, slot: int, x: float, y: float) -> None:
        """Update ``slot``'s position, switching cells if needed."""
        if slot not in self:
            raise UnknownNodeError(slot)
        new_cell = self._cell_of(x, y)
        old_cell = (int(self._cx[slot]), int(self._cy[slot]))
        if old_cell == new_cell:
            return
        self._detach(slot, old_cell)
        bucket = self._cells.get(new_cell)
        if bucket is None:
            bucket = self._cells[new_cell] = _SlotBucket()
        self._pos_in_cell[slot] = bucket.append(slot)
        self._cx[slot], self._cy[slot] = new_cell
        self._grow_bbox(new_cell)

    def _grow_bbox(self, cell: tuple[int, int]) -> None:
        bbox = self._bbox
        if bbox is None:
            self._bbox = [cell[0], cell[0], cell[1], cell[1]]
            return
        cx, cy = cell
        if cx < bbox[0]:
            bbox[0] = cx
        elif cx > bbox[1]:
            bbox[1] = cx
        if cy < bbox[2]:
            bbox[2] = cy
        elif cy > bbox[3]:
            bbox[3] = cy

    def remove(self, slot: int) -> None:
        """Remove ``slot``; raises :class:`UnknownNodeError` if absent."""
        if slot not in self:
            raise UnknownNodeError(slot)
        self._detach(slot, (int(self._cx[slot]), int(self._cy[slot])))
        self._pos_in_cell[slot] = -1
        self._count -= 1

    def rename(self, old_slot: int, new_slot: int) -> None:
        """Move the membership record of ``old_slot`` to ``new_slot``.

        The digraph's swap-delete removal renumbers the last slot into
        the vacated one; this keeps the grid aligned without touching
        cell geometry.  ``new_slot`` must not currently be present.
        """
        if old_slot not in self:
            raise UnknownNodeError(old_slot)
        if new_slot in self:
            raise ConfigurationError(f"rename target slot {new_slot} is already present")
        self._ensure_capacity(new_slot)
        cell = (int(self._cx[old_slot]), int(self._cy[old_slot]))
        pos = int(self._pos_in_cell[old_slot])
        self._cells[cell].data[pos] = new_slot
        self._cx[new_slot], self._cy[new_slot] = cell
        self._pos_in_cell[new_slot] = pos
        self._pos_in_cell[old_slot] = -1

    def _detach(self, slot: int, cell: tuple[int, int]) -> None:
        """Unlink ``slot`` from its bucket (caller fixes its records)."""
        bucket = self._cells[cell]
        moved = bucket.swap_delete(int(self._pos_in_cell[slot]))
        if moved >= 0:
            self._pos_in_cell[moved] = self._pos_in_cell[slot]
        if bucket.count == 0:
            del self._cells[cell]

    def copy(self) -> "SlotGridIndex":
        """Independent copy (same cell size, copied buckets and records)."""
        g = SlotGridIndex(self._cell_size)
        g._cells = {cell: bucket.copy() for cell, bucket in self._cells.items()}
        g._cx = self._cx.copy()
        g._cy = self._cy.copy()
        g._pos_in_cell = self._pos_in_cell.copy()
        g._count = self._count
        g._bbox = None if self._bbox is None else list(self._bbox)
        return g

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def candidate_slots(
        self, x: float, y: float, radius: float, *, cutoff: int | None = None
    ) -> np.ndarray | None:
        """Slots in all cells overlapping the disc's bounding box.

        The array-native counterpart of
        :meth:`UniformGridIndex.candidates_in_box`: a cheap *superset*
        of the exact disc, returned as a numpy index array ready for
        fancy-indexing the digraph's position/range blocks.  The same
        one-cell guard ring protects the exact-boundary corner cases.
        The result is freshly allocated (never a view into a bucket).

        ``cutoff`` declares the candidate count at which gathering stops
        paying for itself: when at least that many slots fall inside the
        box, the query returns ``None`` ("not selective — test every
        slot") before concatenating anything.  Because candidates are a
        superset of the exact disc either way, callers that fall back to
        scanning the full slot range compute identical masks.
        """
        if radius < 0:
            raise ConfigurationError(f"radius must be non-negative, got {radius}")
        cs = self._cell_size
        cx_lo = math.floor((x - radius) / cs) - _GUARD_CELLS
        cx_hi = math.floor((x + radius) / cs) + _GUARD_CELLS
        cy_lo = math.floor((y - radius) / cs) - _GUARD_CELLS
        cy_hi = math.floor((y + radius) / cs) + _GUARD_CELLS
        return self._gather_window(cx_lo, cx_hi, cy_lo, cy_hi, cutoff)

    def cell_of(self, slot: int) -> tuple[int, int]:
        """Return the grid cell ``slot`` currently occupies.

        Lets callers group slots by cell (the bulk-join sweep buckets
        dirty slots this way) without recomputing ``floor(pos / cell)``
        from positions they may hold in a different dtype.
        """
        if slot not in self:
            raise UnknownNodeError(slot)
        return (int(self._cx[slot]), int(self._cy[slot]))

    def candidate_slots_cell(
        self, cx: int, cy: int, radius: float, *, cutoff: int | None = None
    ) -> np.ndarray | None:
        """Candidates for *any* query point inside cell ``(cx, cy)``.

        The bulk-join gather: many dirty nodes sharing a cell need one
        candidate set that covers each of their personal
        :meth:`candidate_slots` windows.  The window is computed with
        integer cell arithmetic — ``floor(radius / cell)`` extra rings
        on each side, plus one ring because the query point may sit
        anywhere in the cell, plus the usual guard ring — so it is a
        superset of every member's window with no floating-point
        boundary risk.  Same ``cutoff`` bail-out semantics as
        :meth:`candidate_slots` (supersets either way, so callers'
        exact filters produce identical membership).
        """
        if radius < 0:
            raise ConfigurationError(f"radius must be non-negative, got {radius}")
        reach = math.floor(radius / self._cell_size) + 1 + _GUARD_CELLS
        return self._gather_window(cx - reach, cx + reach, cy - reach, cy + reach, cutoff)

    def _gather_window(
        self, cx_lo: int, cx_hi: int, cy_lo: int, cy_hi: int, cutoff: int | None
    ) -> np.ndarray | None:
        """Gather all slots in the inclusive cell window (or bail to ``None``)."""
        if (
            cutoff is not None
            and cutoff <= self._count
            and (bbox := self._bbox) is not None
            and cx_lo <= bbox[0]
            and bbox[1] <= cx_hi
            and cy_lo <= bbox[2]
            and bbox[3] <= cy_hi
        ):
            # The query box covers every cell ever occupied, so the gather
            # would collect all _count slots — at or past the cutoff.
            return None
        cells = self._cells
        parts: list[np.ndarray] = []
        total = 0
        if cutoff is None:
            cutoff = self._count + 1  # unreachable: never bail out
        if (cx_hi - cx_lo + 1) * (cy_hi - cy_lo + 1) > len(cells):
            # Huge query relative to the occupancy: scan occupied cells.
            for (cx, cy), bucket in cells.items():
                if cx_lo <= cx <= cx_hi and cy_lo <= cy <= cy_hi:
                    parts.append(bucket.data[: bucket.count])
                    total += bucket.count
                    if total >= cutoff:
                        return None
        else:
            for cx in range(cx_lo, cx_hi + 1):
                for cy in range(cy_lo, cy_hi + 1):
                    bucket = cells.get((cx, cy))
                    if bucket is not None:
                        parts.append(bucket.data[: bucket.count])
                        total += bucket.count
                        if total >= cutoff:
                            return None
        if not parts:
            return np.empty(0, dtype=np.intp)
        if len(parts) == 1:
            return parts[0].copy()
        return np.concatenate(parts)

    def iter_candidate_blocks(self, x: float, y: float, radius: float) -> Iterator[np.ndarray]:
        """Yield one slot block per occupied cell overlapping the disc box.

        The streaming counterpart of :meth:`candidate_slots` for
        consumers that must never materialize an N-wide mask (the sparse
        conflict core): each yielded block is the bucket of one occupied
        cell inside the query's bounding box (plus the usual guard
        ring), so a caller can accumulate exact per-block filter results
        and bail out early once the running candidate count proves the
        query unselective.  The union of the yielded blocks has exactly
        the membership :meth:`candidate_slots` would return.

        Blocks are **read-only views into live buckets** — valid only
        until the next grid mutation; callers must copy (or concatenate,
        which copies) anything they keep.
        """
        if radius < 0:
            raise ConfigurationError(f"radius must be non-negative, got {radius}")
        cs = self._cell_size
        cx_lo = math.floor((x - radius) / cs) - _GUARD_CELLS
        cx_hi = math.floor((x + radius) / cs) + _GUARD_CELLS
        cy_lo = math.floor((y - radius) / cs) - _GUARD_CELLS
        cy_hi = math.floor((y + radius) / cs) + _GUARD_CELLS
        cells = self._cells
        if (cx_hi - cx_lo + 1) * (cy_hi - cy_lo + 1) > len(cells):
            # Huge query relative to the occupancy: scan occupied cells.
            for (cx, cy), bucket in cells.items():
                if cx_lo <= cx <= cx_hi and cy_lo <= cy <= cy_hi:
                    block = bucket.data[: bucket.count]
                    block.flags.writeable = False
                    yield block
            return
        for cx in range(cx_lo, cx_hi + 1):
            for cy in range(cy_lo, cy_hi + 1):
                bucket = cells.get((cx, cy))
                if bucket is not None:
                    block = bucket.data[: bucket.count]
                    block.flags.writeable = False
                    yield block
