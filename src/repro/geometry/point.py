"""Position-array helpers.

Positions are always ``(n, 2)`` ``float64`` arrays internally.  These
helpers normalize user input, generate random placements/movements for the
paper's experiments, and apply displacements.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "as_position_array",
    "displace",
    "random_directions",
    "random_positions",
]


def as_position_array(points: Iterable[Sequence[float]] | np.ndarray) -> np.ndarray:
    """Coerce ``points`` to a ``(n, 2)`` float64 array.

    Accepts any iterable of ``(x, y)`` pairs or an array already of the
    right shape.  A single point must still be wrapped: ``[(x, y)]``.

    Raises
    ------
    ConfigurationError
        If the input cannot be interpreted as 2-D points or contains
        non-finite coordinates.
    """
    arr = np.asarray(
        list(points) if not isinstance(points, np.ndarray) else points, dtype=np.float64
    )
    if arr.size == 0:
        return arr.reshape(0, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ConfigurationError(f"expected (n, 2) positions, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise ConfigurationError("positions must be finite")
    return arr


def random_positions(
    n: int,
    rng: np.random.Generator,
    *,
    width: float = 100.0,
    height: float = 100.0,
) -> np.ndarray:
    """Sample ``n`` positions uniformly over a ``width x height`` rectangle.

    This is the paper's generator: "choosing their x and y coordinates
    independently and uniformly from the interval [0, 100]" (section 5.1).
    """
    if n < 0:
        raise ConfigurationError(f"n must be non-negative, got {n}")
    if width <= 0 or height <= 0:
        raise ConfigurationError("area dimensions must be positive")
    pos = rng.random((n, 2))
    pos[:, 0] *= width
    pos[:, 1] *= height
    return pos


def random_directions(n: int, rng: np.random.Generator) -> np.ndarray:
    """Sample ``n`` unit vectors with angles uniform in ``[0, 2*pi)``.

    Used by the movement experiment ("moved ... in a random direction in
    the x-y plane", section 5.3).
    """
    if n < 0:
        raise ConfigurationError(f"n must be non-negative, got {n}")
    theta = rng.random(n) * (2.0 * np.pi)
    return np.stack([np.cos(theta), np.sin(theta)], axis=1)


def displace(
    positions: np.ndarray,
    directions: np.ndarray,
    magnitudes: np.ndarray | float,
    *,
    clip_to: tuple[float, float] | None = None,
) -> np.ndarray:
    """Return ``positions + magnitudes * directions`` (new array).

    Parameters
    ----------
    positions, directions:
        ``(n, 2)`` arrays; ``directions`` need not be normalized.
    magnitudes:
        Scalar or ``(n,)`` array of displacement lengths.
    clip_to:
        Optional ``(width, height)``; when given, the result is clamped to
        ``[0, width] x [0, height]`` so nodes stay inside the simulation
        area (the paper's arena is the 100 x 100 square).
    """
    positions = np.asarray(positions, dtype=np.float64)
    directions = np.asarray(directions, dtype=np.float64)
    mags = np.asarray(magnitudes, dtype=np.float64)
    if mags.ndim == 1:
        mags = mags[:, None]
    out = positions + mags * directions
    if clip_to is not None:
        width, height = clip_to
        np.clip(out[:, 0], 0.0, width, out=out[:, 0])
        np.clip(out[:, 1], 0.0, height, out=out[:, 1])
    return out
