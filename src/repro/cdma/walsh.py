"""Walsh–Hadamard orthogonal code generation.

Walsh codes are the rows of a Hadamard matrix of order ``2^k``: mutually
orthogonal ±1 chip sequences — the paper's "orthogonal codes" realized
concretely.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CodebookError

__all__ = ["hadamard_matrix", "walsh_codes", "next_power_of_two"]


def next_power_of_two(n: int) -> int:
    """Smallest power of two ``>= max(n, 1)``."""
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


def hadamard_matrix(order: int) -> np.ndarray:
    """The Sylvester-construction Hadamard matrix of the given order.

    ``order`` must be a power of two (including 1).  Entries are ±1
    ``int8``; rows are mutually orthogonal with ``H @ H.T = order * I``.
    """
    if order < 1 or (order & (order - 1)) != 0:
        raise CodebookError(f"Hadamard order must be a power of two, got {order}")
    h = np.array([[1]], dtype=np.int8)
    while h.shape[0] < order:
        h = np.block([[h, h], [h, -h]]).astype(np.int8)
    return h


def walsh_codes(n_codes: int, *, length: int | None = None) -> np.ndarray:
    """The first ``n_codes`` Walsh codes as a ``(n_codes, length)`` array.

    ``length`` defaults to the smallest power of two that fits
    ``n_codes``.  Row ``i`` is code index ``i`` (0-based); the codebook
    layer maps the paper's 1-based colors onto rows.
    """
    if n_codes < 1:
        raise CodebookError(f"need at least one code, got {n_codes}")
    if length is None:
        length = next_power_of_two(n_codes)
    if length < n_codes:
        raise CodebookError(f"length {length} cannot host {n_codes} orthogonal codes")
    return hadamard_matrix(length)[:n_codes]
