"""The superposition channel over the ad-hoc digraph.

A receiver hears the chip-synchronous sum of every in-range
transmitter's stream (unit-disc gain: in range contributes 1, out of
range 0 — the paper's interference model), optionally with additive
white Gaussian noise.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.errors import CodebookError
from repro.types import NodeId

__all__ = ["received_signal"]


def received_signal(
    streams: Mapping[NodeId, np.ndarray],
    reachers: set[NodeId],
    *,
    noise_std: float = 0.0,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Superpose the chip streams of ``reachers`` at one receiver.

    Parameters
    ----------
    streams:
        Transmitter id -> chip stream (all equal length).
    reachers:
        The transmitters whose signal reaches this receiver (its
        in-neighbors among the transmitting set).
    noise_std:
        AWGN standard deviation (0 = noiseless).
    """
    lengths = {len(s) for s in streams.values()}
    if len(lengths) > 1:
        raise CodebookError(f"chip streams must share a length, got {sorted(lengths)}")
    length = lengths.pop() if lengths else 0
    out = np.zeros(length, dtype=np.float64)
    for tx in reachers:
        out += streams[tx]
    if noise_std > 0.0:
        if rng is None:
            raise CodebookError("noise_std > 0 requires an rng")
        out += rng.normal(0.0, noise_std, size=length)
    return out
