"""CDMA physical layer: orthogonal codes, spreading, and packet reception.

The paper treats CDMA abstractly: orthogonal codes eliminate collisions,
so code assignment reduces to conflict-graph coloring.  This package
realizes the abstraction so the claim is *demonstrated* rather than
assumed: Walsh–Hadamard codes, BPSK chip spreading, a superposition
channel over the ad-hoc digraph, and a packet-reception simulator in
which a CA1/CA2-valid assignment yields zero garbled packets and
violations yield concrete collisions.
"""

from repro.cdma.channel import received_signal
from repro.cdma.codebook import Codebook
from repro.cdma.phy import ReceptionReport, simulate_slot
from repro.cdma.spreading import despread, spread
from repro.cdma.walsh import hadamard_matrix, walsh_codes

__all__ = [
    "Codebook",
    "ReceptionReport",
    "despread",
    "hadamard_matrix",
    "received_signal",
    "simulate_slot",
    "spread",
    "walsh_codes",
]
