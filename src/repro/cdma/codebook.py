"""Color-to-code mapping.

The recoding layer hands out positive integer codes; transmitter
hardware realizes code ``c`` as Walsh code row ``c - 1``.  A codebook
has a fixed chip length — the hardware limit motivating the paper's
goal 1 ("the hardware of a node can be designed to transmit on only
some maximum number of codes").
"""

from __future__ import annotations

import numpy as np

from repro.cdma.walsh import next_power_of_two, walsh_codes
from repro.errors import CodebookError
from repro.types import Color

__all__ = ["Codebook"]


class Codebook:
    """A fixed family of orthogonal Walsh codes indexed by color.

    Parameters
    ----------
    capacity:
        Number of distinct colors supported (chip length is the next
        power of two).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise CodebookError(f"capacity must be >= 1, got {capacity}")
        self._codes = walsh_codes(capacity, length=next_power_of_two(capacity))
        self._capacity = capacity

    @classmethod
    def for_max_color(cls, max_color: int) -> "Codebook":
        """A codebook just large enough for colors ``1..max_color``."""
        return cls(max(max_color, 1))

    @property
    def capacity(self) -> int:
        """Largest color this codebook can realize."""
        return self._capacity

    @property
    def chip_length(self) -> int:
        """Chips per bit (the spreading factor)."""
        return int(self._codes.shape[1])

    def code_for(self, color: Color) -> np.ndarray:
        """The ±1 chip sequence realizing ``color`` (1-based)."""
        if not (1 <= color <= self._capacity):
            raise CodebookError(
                f"color {color} outside codebook capacity 1..{self._capacity}"
            )
        return self._codes[color - 1]

    def are_orthogonal(self, a: Color, b: Color) -> bool:
        """Whether two colors map to orthogonal codes (true iff distinct)."""
        return bool(np.dot(self.code_for(a), self.code_for(b)) == 0) if a != b else False
