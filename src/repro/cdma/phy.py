"""Packet-slot reception simulation.

One slot: a set of transmitters each spread a payload with the Walsh
code of their assigned color and transmit simultaneously.  Every node
that is not itself transmitting despreads each in-range transmitter's
code from the superposed signal.

Outcomes mirror the paper's collision taxonomy:

* **primary collision** — the receiver was transmitting (its own
  outgoing transmission damages anything incoming);
* **hidden collision** — two in-range transmitters shared a code, so
  their chips are indistinguishable after correlation;
* **ok** — the payload decodes exactly (guaranteed by orthogonality
  when the assignment satisfies CA1 + CA2).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

import numpy as np

from repro.cdma.channel import received_signal
from repro.cdma.codebook import Codebook
from repro.cdma.spreading import despread, spread, symbols_to_bits
from repro.coloring.assignment import CodeAssignment
from repro.topology.static import DigraphLike
from repro.types import NodeId

__all__ = ["ReceptionReport", "simulate_slot"]


@dataclass(frozen=True)
class ReceptionReport:
    """Outcome of decoding one (transmitter, receiver) pair in a slot."""

    transmitter: NodeId
    receiver: NodeId
    success: bool
    reason: str  # "ok" | "primary_collision" | "hidden_collision"
    decoded_bits: tuple[int, ...]


def simulate_slot(
    graph: DigraphLike,
    assignment: CodeAssignment,
    payloads: Mapping[NodeId, Iterable[int]],
    *,
    codebook: Codebook | None = None,
    noise_std: float = 0.0,
    rng: np.random.Generator | None = None,
) -> list[ReceptionReport]:
    """Simulate one transmission slot.

    Parameters
    ----------
    payloads:
        Transmitter id -> payload bits (all payloads the same length).
    codebook:
        Defaults to one sized for the assignment's max color.

    Returns one report per (transmitter, in-range receiver) pair,
    deterministically ordered.
    """
    transmitters = sorted(payloads)
    if not transmitters:
        return []
    if codebook is None:
        codebook = Codebook.for_max_color(assignment.max_color())

    bits = {tx: np.asarray(list(payloads[tx]), dtype=np.int8) for tx in transmitters}
    lengths = {len(b) for b in bits.values()}
    if len(lengths) != 1:
        raise ValueError("all payloads must have equal length")

    streams = {
        tx: spread(bits[tx], codebook.code_for(assignment[tx])) for tx in transmitters
    }
    tx_set = set(transmitters)
    reports: list[ReceptionReport] = []

    receivers = sorted(
        {rx for tx in transmitters for rx in graph.out_neighbors(tx)}
    )
    for rx in receivers:
        incoming = [tx for tx in transmitters if graph.has_edge(tx, rx)]
        if not incoming:
            continue
        if rx in tx_set:
            # Primary collision: the receiver's own outgoing transmission
            # garbles everything incoming, regardless of codes.
            for tx in incoming:
                reports.append(
                    ReceptionReport(tx, rx, False, "primary_collision", ())
                )
            continue
        signal = received_signal(streams, set(incoming), noise_std=noise_std, rng=rng)
        colors_seen: dict[int, int] = {}
        for tx in incoming:
            colors_seen[assignment[tx]] = colors_seen.get(assignment[tx], 0) + 1
        for tx in incoming:
            correlations = despread(signal, codebook.code_for(assignment[tx]))
            decoded = symbols_to_bits(correlations)
            clean = bool((decoded == bits[tx]).all())
            if colors_seen[assignment[tx]] > 1:
                # Two same-code transmitters at this receiver: even if a
                # particular payload pattern survives superposition, the
                # streams are not separable — a hidden collision.
                reports.append(
                    ReceptionReport(
                        tx, rx, False, "hidden_collision", tuple(int(b) for b in decoded)
                    )
                )
            else:
                reports.append(
                    ReceptionReport(
                        tx,
                        rx,
                        clean,
                        "ok" if clean else "hidden_collision",
                        tuple(int(b) for b in decoded),
                    )
                )
    return reports
