"""BPSK chip spreading and correlation despreading (vectorized)."""

from __future__ import annotations

import numpy as np

from repro.errors import CodebookError

__all__ = ["spread", "despread", "bits_to_symbols", "symbols_to_bits"]


def bits_to_symbols(bits: np.ndarray) -> np.ndarray:
    """Map {0, 1} bits to BPSK symbols {-1, +1} (0 -> -1)."""
    b = np.asarray(bits)
    if not np.isin(b, (0, 1)).all():
        raise CodebookError("bits must be 0/1")
    return (b.astype(np.int8) * 2 - 1).astype(np.int8)


def symbols_to_bits(symbols: np.ndarray) -> np.ndarray:
    """Hard-decision demap: positive -> 1, non-positive -> 0."""
    return (np.asarray(symbols) > 0).astype(np.int8)


def spread(bits: np.ndarray, code: np.ndarray) -> np.ndarray:
    """Spread a bit vector over a ±1 chip code.

    Returns a float64 chip stream of length ``len(bits) * len(code)``:
    the outer product of BPSK symbols and code chips, flattened.
    """
    symbols = bits_to_symbols(bits).astype(np.float64)
    c = np.asarray(code, dtype=np.float64)
    return np.outer(symbols, c).ravel()


def despread(chips: np.ndarray, code: np.ndarray) -> np.ndarray:
    """Correlate a received chip stream against ``code``.

    Returns per-bit correlation values normalized by the code length:
    for a clean signal spread with the same code the values are exactly
    ±1; orthogonal interferers contribute exactly 0.
    """
    c = np.asarray(code, dtype=np.float64)
    x = np.asarray(chips, dtype=np.float64)
    if x.size % c.size != 0:
        raise CodebookError(
            f"chip stream length {x.size} is not a multiple of code length {c.size}"
        )
    frames = x.reshape(-1, c.size)
    return frames @ c / c.size
