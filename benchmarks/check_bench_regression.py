"""CI gate: compare a fresh event-loop bench against the committed baseline.

Usage::

    python benchmarks/check_bench_regression.py \
        --baseline BENCH_eventloop.json --fresh bench-fresh.json [--min-ratio 0.5] \
        [--min-speedup speedup_vs_cold=1.2 --min-speedup speedup_vs_per_strategy=1.2 \
         --min-speedup run_savings_vs_fixed=1.2]

Entries are matched by ``(scenario, mode)`` and compared on
``events_per_sec``.  The gate fails (exit 1) when any matched entry
drops below ``min-ratio`` times the committed baseline — loose enough
to absorb runner-hardware variance, tight enough to catch an event-loop
fast path silently falling back to dense scans (those regressions are
2-4x, not 2x variance).  Entries present on only one side are reported
but do not fail the gate (bench coverage may grow PR over PR).

``--min-speedup [SCENARIO/MODE:]FIELD=MIN`` (repeatable) additionally
gates the fresh run's *intra-run* ratios — the
warm-start-vs-cold-rebuild and shared-vs-per-strategy replay speedups,
the sparse core's ``speedup_vs_array`` and ``speedup_vs_pr7``, and the
adaptive controller's ``run_savings_vs_fixed`` run-budget ratio (a
seeded run-count ratio, not a timing, so it is exactly reproducible) —
which don't depend on runner hardware and therefore hold a much
tighter floor than cross-run throughput.  Unscoped, every fresh entry
carrying ``FIELD`` must report at least ``MIN``; with the optional
``SCENARIO/MODE:`` scope only that one entry is gated (needed since
small-N sparse entries deliberately publish a ``speedup_vs_array``
*below* 1 — the honest small-N regression record — while the large-N
entry holds a hard floor).  Either way, a floor that matches no fresh
entry fails the gate.

``--max-mem SCENARIO/MODE=MB`` (repeatable) puts a ceiling on one
fresh entry's ``peak_mem_mb`` — the memory gate of the sparse large-N
regime (e.g. ``--max-mem large-join/sparse=512``).  A spec that
matches no fresh entry fails the gate: a silently vanished entry must
not turn the ceiling into a no-op.

``--max-field [SCENARIO/MODE:]FIELD=MAX`` (repeatable) is the generic
*ceiling* counterpart of ``--min-speedup``: every fresh entry carrying
``FIELD`` (or just the scoped one) must report at most ``MAX``.  The
checkpoint bench's ``ckpt_bytes_ratio`` gates here — a delta chain
whose serialized bytes creep toward the full snapshot's has lost its
O(changes) contract even when the wall clock still looks healthy.
Like the floors, a ceiling that matches no fresh entry fails the gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _by_key(entries: list[dict]) -> dict[tuple[str, str], dict]:
    return {(e["scenario"], e["mode"]): e for e in entries}


def _parse_field_specs(
    parser: argparse.ArgumentParser, items: list[str], flag: str
) -> dict[tuple[tuple[str, str] | None, str], float]:
    """Parse repeatable ``[SCENARIO/MODE:]FIELD=BOUND`` specs.

    Returns ``(scope, field) -> bound``, where scope is a
    ``(scenario, mode)`` pair or None for "every entry carrying the
    field" — shared by the ``--min-speedup`` floors and the
    ``--max-field`` ceilings.
    """
    specs: dict[tuple[tuple[str, str] | None, str], float] = {}
    for item in items:
        spec, _, bound = item.partition("=")
        scope_part, colon, field = spec.rpartition(":")
        scope: tuple[str, str] | None = None
        if colon:
            scenario, slash, mode = scope_part.partition("/")
            if not scenario or not slash or not mode:
                parser.error(f"{flag} scope expects SCENARIO/MODE:, got {item!r}")
            scope = (scenario, mode)
        if not field or not bound:
            parser.error(f"{flag} expects [SCENARIO/MODE:]FIELD=BOUND, got {item!r}")
        try:
            specs[(scope, field)] = float(bound)
        except ValueError:
            parser.error(f"{flag} bound must be a number, got {item!r}")
    return specs


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path, required=True)
    parser.add_argument("--fresh", type=Path, required=True)
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=0.5,
        help="fail when fresh events/sec < min-ratio * baseline (default 0.5)",
    )
    parser.add_argument(
        "--min-speedup",
        action="append",
        default=[],
        metavar="[SCENARIO/MODE:]FIELD=MIN",
        help="fail when a fresh entry's FIELD speedup is below MIN "
        "(repeatable, e.g. speedup_vs_cold=1.2 or "
        "large-join/sparse:speedup_vs_pr7=3)",
    )
    parser.add_argument(
        "--max-mem",
        action="append",
        default=[],
        metavar="SCENARIO/MODE=MB",
        help="fail when the named fresh entry's peak_mem_mb exceeds MB "
        "(repeatable, e.g. large-join/sparse=512)",
    )
    parser.add_argument(
        "--max-field",
        action="append",
        default=[],
        metavar="[SCENARIO/MODE:]FIELD=MAX",
        help="fail when a fresh entry's FIELD exceeds MAX "
        "(repeatable, e.g. large-ckpt/delta:ckpt_bytes_ratio=0.2)",
    )
    args = parser.parse_args(argv)

    speedup_floors = _parse_field_specs(parser, args.min_speedup, "--min-speedup")
    field_ceilings = _parse_field_specs(parser, args.max_field, "--max-field")

    mem_ceilings: dict[tuple[str, str], float] = {}
    for item in args.max_mem:
        key, _, ceiling = item.partition("=")
        scenario, slash, mode = key.partition("/")
        if not scenario or not slash or not mode or not ceiling:
            parser.error(f"--max-mem expects SCENARIO/MODE=MB, got {item!r}")
        try:
            mem_ceilings[(scenario, mode)] = float(ceiling)
        except ValueError:
            parser.error(f"--max-mem ceiling must be a number, got {item!r}")

    baseline = _by_key(json.loads(args.baseline.read_text()))
    fresh = _by_key(json.loads(args.fresh.read_text()))

    failures: list[str] = []
    for key in sorted(baseline.keys() | fresh.keys()):
        scenario, mode = key
        if key not in baseline or key not in fresh:
            side = "baseline" if key not in baseline else "fresh run"
            print(f"note: {scenario}/{mode} missing from {side}; skipping")
            continue
        base_eps = baseline[key]["events_per_sec"]
        fresh_eps = fresh[key]["events_per_sec"]
        ratio = fresh_eps / base_eps if base_eps > 0 else float("inf")
        verdict = "ok" if ratio >= args.min_ratio else "REGRESSION"
        print(
            f"{scenario:<22} {mode:>12}: baseline {base_eps:>10.0f} ev/s, "
            f"fresh {fresh_eps:>10.0f} ev/s ({ratio:.2f}x) {verdict}"
        )
        if ratio < args.min_ratio:
            failures.append(f"{scenario}/{mode} at {ratio:.2f}x (< {args.min_ratio}x)")

    floors_matched = dict.fromkeys(speedup_floors, 0)
    ceilings_matched = dict.fromkeys(field_ceilings, 0)
    for key in sorted(fresh):
        entry = fresh[key]
        scenario, mode = key
        for (scope, field), minimum in speedup_floors.items():
            if field not in entry or (scope is not None and scope != key):
                continue
            floors_matched[(scope, field)] += 1
            value = entry[field]
            verdict = "ok" if value >= minimum else "REGRESSION"
            print(
                f"{scenario:<22} {mode:>12}: {field} {value:.2f}x "
                f"(floor {minimum:.2f}x) {verdict}"
            )
            if value < minimum:
                failures.append(f"{scenario}/{mode} {field} at {value:.2f}x (< {minimum}x)")
        for (scope, field), maximum in field_ceilings.items():
            if field not in entry or (scope is not None and scope != key):
                continue
            ceilings_matched[(scope, field)] += 1
            value = entry[field]
            verdict = "ok" if value <= maximum else "REGRESSION"
            print(
                f"{scenario:<22} {mode:>12}: {field} {value:.4g} "
                f"(ceiling {maximum:.4g}) {verdict}"
            )
            if value > maximum:
                failures.append(f"{scenario}/{mode} {field} at {value:.4g} (> {maximum:.4g})")
    for (scenario, mode), ceiling in sorted(mem_ceilings.items()):
        entry = fresh.get((scenario, mode))
        if entry is None or "peak_mem_mb" not in entry:
            missing = "entry" if entry is None else "peak_mem_mb"
            failures.append(f"--max-mem {scenario}/{mode}: no fresh {missing} to gate")
            continue
        peak = entry["peak_mem_mb"]
        verdict = "ok" if peak <= ceiling else "REGRESSION"
        print(
            f"{scenario:<22} {mode:>12}: peak_mem {peak:.1f} MiB "
            f"(ceiling {ceiling:.1f} MiB) {verdict}"
        )
        if peak > ceiling:
            failures.append(
                f"{scenario}/{mode} peak_mem_mb at {peak:.1f} MiB (> {ceiling:.1f} MiB)"
            )

    for flag, matched_by_spec in (
        ("--min-speedup", floors_matched),
        ("--max-field", ceilings_matched),
    ):
        for (scope, field), matched in matched_by_spec.items():
            if matched == 0:
                # an unmatched bound means the bench stopped emitting
                # the field (or the CI arg is typo'd) — the gate must
                # not silently become a no-op
                label = field if scope is None else f"{scope[0]}/{scope[1]}:{field}"
                failures.append(f"{flag} {label}: no fresh entry carries this field")

    if failures:
        print("\nbench regression gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nbench regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
