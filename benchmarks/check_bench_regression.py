"""CI gate: compare a fresh event-loop bench against the committed baseline.

Usage::

    python benchmarks/check_bench_regression.py \
        --baseline BENCH_eventloop.json --fresh bench-fresh.json [--min-ratio 0.5]

Entries are matched by ``(scenario, mode)`` and compared on
``events_per_sec``.  The gate fails (exit 1) when any matched entry
drops below ``min-ratio`` times the committed baseline — loose enough
to absorb runner-hardware variance, tight enough to catch an event-loop
fast path silently falling back to dense scans (those regressions are
2-4x, not 2x variance).  Entries present on only one side are reported
but do not fail the gate (bench coverage may grow PR over PR).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _by_key(entries: list[dict]) -> dict[tuple[str, str], dict]:
    return {(e["scenario"], e["mode"]): e for e in entries}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path, required=True)
    parser.add_argument("--fresh", type=Path, required=True)
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=0.5,
        help="fail when fresh events/sec < min-ratio * baseline (default 0.5)",
    )
    args = parser.parse_args(argv)

    baseline = _by_key(json.loads(args.baseline.read_text()))
    fresh = _by_key(json.loads(args.fresh.read_text()))

    failures: list[str] = []
    for key in sorted(baseline.keys() | fresh.keys()):
        scenario, mode = key
        if key not in baseline or key not in fresh:
            side = "baseline" if key not in baseline else "fresh run"
            print(f"note: {scenario}/{mode} missing from {side}; skipping")
            continue
        base_eps = baseline[key]["events_per_sec"]
        fresh_eps = fresh[key]["events_per_sec"]
        ratio = fresh_eps / base_eps if base_eps > 0 else float("inf")
        verdict = "ok" if ratio >= args.min_ratio else "REGRESSION"
        print(
            f"{scenario:<22} {mode:>12}: baseline {base_eps:>10.0f} ev/s, "
            f"fresh {fresh_eps:>10.0f} ev/s ({ratio:.2f}x) {verdict}"
        )
        if ratio < args.min_ratio:
            failures.append(f"{scenario}/{mode} at {ratio:.2f}x (< {args.min_ratio}x)")

    if failures:
        print("\nbench regression gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nbench regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
