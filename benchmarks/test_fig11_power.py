"""Fig 11 — the power-range-increase experiment (panels a-c).

A random half of the nodes raise their ranges by ``raisefactor``;
metrics are deltas against the post-join baseline network.
"""

from benchmarks.conftest import (
    JOIN_N_POINT,
    RAISEFACTORS,
    RUNS,
    SEED,
    assert_checks,
    emit,
    run_once,
)
from repro.analysis.shape_checks import check_power_shapes
from repro.sim.experiments import run_power_experiment


def _power_series():
    return run_power_experiment(RAISEFACTORS, n=JOIN_N_POINT, runs=RUNS, seed=SEED)


def test_fig11a_delta_max_color(benchmark):
    """Fig 11(a): Δ max color vs raisefactor — CP beats Minim here.

    Section 5.2: "The CP approach performs better than the Minim minimal
    approach in terms of maximum color index assigned to the network."
    """
    series = run_once(benchmark, _power_series)
    emit(series, "delta_max_color", "Fig 11(a) Δ(max color) vs raisefactor")
    checks = [c for c in check_power_shapes(series) if "max_color" in c.claim]
    assert_checks(checks)


def test_fig11b_delta_recodings_all(benchmark):
    """Fig 11(b): Δ recodings vs raisefactor (all strategies)."""
    series = run_once(benchmark, _power_series)
    emit(series, "delta_recodings", "Fig 11(b) Δ(# recodings) vs raisefactor")
    checks = [c for c in check_power_shapes(series) if "recodings" in c.claim]
    assert_checks(checks)


def test_fig11c_delta_recodings_zoom(benchmark):
    """Fig 11(c): Δ recodings — Minim vs CP zoom.

    Section 5.2: Minim "outperforms it by a huge margin in the total
    number of recodings" — at the largest raisefactor CP pays at least
    ~1.3x Minim's recodings in our reproduction.
    """
    series = run_once(
        benchmark,
        lambda: run_power_experiment(
            RAISEFACTORS, n=JOIN_N_POINT, runs=RUNS, seed=SEED, strategies=("Minim", "CP")
        ),
    )
    emit(series, "delta_recodings", "Fig 11(c) Δ(# recodings) vs raisefactor (zoom)")
    minim = series.series("delta_recodings", "Minim")
    cp = series.series("delta_recodings", "CP")
    assert all(m <= c for m, c in zip(minim, cp))
    assert cp[-1] >= 1.3 * max(minim[-1], 1e-9)
