"""Fig 12 — the node-movement experiment (panels a-d).

Panel (a) sweeps the maximum displacement for a single round of moves;
panels (b-d) run multiple rounds at fixed ``maxdisp`` and report
cumulative deltas per round.
"""

from benchmarks.conftest import (
    MAXDISPS,
    MOVE_N,
    MOVE_ROUNDS,
    RUNS,
    SEED,
    assert_checks,
    emit,
    run_once,
)
from repro.analysis.shape_checks import check_move_shapes
from repro.sim.experiments import (
    run_movement_disp_experiment,
    run_movement_rounds_experiment,
)


def _rounds_series():
    return run_movement_rounds_experiment(
        MOVE_ROUNDS, maxdisp=40.0, n=MOVE_N, runs=RUNS, seed=SEED
    )


def test_fig12a_delta_recodings_vs_maxdisp(benchmark):
    """Fig 12(a): Δ recodings vs maxdisp (1 round) — Minim below CP."""
    series = run_once(
        benchmark,
        lambda: run_movement_disp_experiment(
            MAXDISPS, n=MOVE_N, runs=RUNS, seed=SEED, strategies=("Minim", "CP")
        ),
    )
    emit(series, "delta_recodings", "Fig 12(a) Δ(# recodings) vs maxdisp")
    minim = series.series("delta_recodings", "Minim")
    cp = series.series("delta_recodings", "CP")
    assert all(m <= c for m, c in zip(minim, cp))
    # CP rejoins every mover, so it pays ~N recodes even at maxdisp 0;
    # Minim pays none.
    assert minim[0] == 0.0
    assert cp[-1] >= MOVE_N * 0.5


def test_fig12b_delta_max_color_vs_rounds(benchmark):
    """Fig 12(b): Δ max color vs round — flat-ish, Minim within a few."""
    series = run_once(benchmark, _rounds_series)
    emit(series, "delta_max_color", "Fig 12(b) Δ(max color) vs RoundNo")
    checks = [c for c in check_move_shapes(series) if "max_color" in c.claim]
    assert_checks(checks)


def test_fig12c_delta_recodings_vs_rounds_all(benchmark):
    """Fig 12(c): Δ recodings vs round (all strategies)."""
    series = run_once(benchmark, _rounds_series)
    emit(series, "delta_recodings", "Fig 12(c) Δ(# recodings) vs RoundNo")
    checks = [c for c in check_move_shapes(series) if "recodings" in c.claim]
    assert_checks(checks)


def test_fig12d_delta_recodings_vs_rounds_zoom(benchmark):
    """Fig 12(d): Δ recodings — the widening Minim/CP gap.

    Section 5.3: "for RoundNo = 10, the Minim achieves 400 fewer
    recodings than CP!" — the absolute number is workload-scaled here,
    but the gap must grow monotonically with rounds.
    """
    series = run_once(
        benchmark,
        lambda: run_movement_rounds_experiment(
            MOVE_ROUNDS,
            maxdisp=40.0,
            n=MOVE_N,
            runs=RUNS,
            seed=SEED,
            strategies=("Minim", "CP"),
        ),
    )
    emit(series, "delta_recodings", "Fig 12(d) Δ(# recodings) vs RoundNo (zoom)")
    minim = series.series("delta_recodings", "Minim")
    cp = series.series("delta_recodings", "CP")
    gaps = [c - m for m, c in zip(minim, cp)]
    assert all(g >= 0 for g in gaps)
    assert gaps == sorted(gaps), "Minim/CP gap must widen with rounds"
    assert gaps[-1] >= 2.0 * gaps[0]
