"""Ablation benches for the design choices DESIGN.md calls out.

* Weight-3 old-color edges vs weight-1 (removes the retention bias).
* Maximum-weight matching vs greedy sequential reassignment.
* Gossip compaction after power-increase churn (section 6 future work).
"""

import numpy as np

from benchmarks.conftest import RUNS, SEED, emit, run_once
from repro.coloring.verify import is_valid
from repro.gossip import gossip_compaction, kempe_compaction
from repro.sim.experiments import run_join_experiment
from repro.sim.network import AdHocNetwork
from repro.sim.random_networks import sample_configs
from repro.sim.workloads import power_raise_workload
from repro.strategies.minim import MinimStrategy

N_VALUES = (40, 80)


def test_ablation_old_color_weight(benchmark):
    """Dropping the weight-3 retention bias explodes recoding counts.

    This isolates *why* the paper weights old-color edges 3: with weight
    1 the matching still restores validity but shuffles colors freely,
    so the "minimal recoding" property is lost.
    """
    series = run_once(
        benchmark,
        lambda: run_join_experiment(
            N_VALUES, runs=RUNS, seed=SEED, strategies=("Minim", "Minim/w1")
        ),
    )
    emit(series, "recodings", "Ablation: old-color weight 3 vs 1 (recodings)")
    emit(series, "max_color", "Ablation: old-color weight 3 vs 1 (max color)")
    base = series.series("recodings", "Minim")
    ablated = series.series("recodings", "Minim/w1")
    # The ablated variant recodes strictly more everywhere, and the gap
    # widens with network size (>= 1.5x at the largest N).
    assert all(a >= 1.15 * b for a, b in zip(ablated, base))
    assert ablated[-1] >= 1.5 * base[-1]


def test_ablation_matching_vs_greedy(benchmark):
    """Matching vs keep-or-lowest greedy: same minimality on joins, but
    the matching reuses the palette at least as well."""
    series = run_once(
        benchmark,
        lambda: run_join_experiment(
            N_VALUES, runs=RUNS, seed=SEED, strategies=("Minim", "GreedySeq")
        ),
    )
    emit(series, "max_color", "Ablation: matching vs greedy sequential (max color)")
    emit(series, "recodings", "Ablation: matching vs greedy sequential (recodings)")
    minim = series.series("max_color", "Minim")
    greedy = series.series("max_color", "GreedySeq")
    assert sum(minim) <= sum(greedy) + 1e-9


def _gossip_gain():
    gains = []
    for seed in range(RUNS):
        rng = np.random.default_rng(SEED + seed)
        configs = sample_configs(60, rng)
        net = AdHocNetwork(MinimStrategy())
        for cfg in configs:
            net.join(cfg)
        for ev in power_raise_workload(configs, 2.5, rng):
            net.apply(ev)
        before = net.max_color()
        plain = gossip_compaction(net.graph, net.assignment, rng=np.random.default_rng(seed))
        kempe = kempe_compaction(net.graph, net.assignment, rng=np.random.default_rng(seed))
        assert is_valid(net.graph, plain.assignment)
        assert is_valid(net.graph, kempe.assignment)
        gains.append(
            (
                before,
                plain.assignment.max_color(),
                kempe.assignment.max_color(),
                len(kempe.recolors),
                kempe.rounds,
            )
        )
    return gains


def test_gossip_compaction_after_churn(benchmark):
    """Section 6 future work: quiet-period gossip recovers code reuse.

    Compares plain lowest-free descent against the Kempe-swap variant.
    """
    gains = run_once(benchmark, _gossip_gain)
    print("\n=== Gossip compaction after power churn ===")
    print(f"{'before':>8} {'descent':>8} {'kempe':>8} {'recolors':>9} {'rounds':>7}")
    for before, descent, kempe, recolors, rounds in gains:
        print(f"{before:>8} {descent:>8} {kempe:>8} {recolors:>9} {rounds:>7}")
    # Compaction never hurts; Kempe never ends worse than plain descent.
    assert all(descent <= before for before, descent, *_x in gains)
    assert all(kempe <= descent for _b, descent, kempe, *_x in gains)
