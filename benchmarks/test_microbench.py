"""Microbenchmarks of the hot kernels.

These pin the performance-critical building blocks (conflict-matrix
construction, matching, DSATUR, per-join recoding, spatial queries,
despreading) so regressions are visible in ``--benchmark-compare`` runs.
Unlike the figure benches these use pytest-benchmark's normal
multi-round timing.
"""

import numpy as np
import pytest

from repro.cdma.spreading import despread, spread
from repro.cdma.walsh import walsh_codes
from repro.coloring.dsatur import dsatur_color_matrix
from repro.geometry.grid_index import UniformGridIndex
from repro.matching.hungarian import solve_max_weight_dense
from repro.sim.network import AdHocNetwork
from repro.sim.random_networks import sample_configs
from repro.strategies.minim import MinimStrategy, plan_local_matching_recode
from repro.topology.builder import build_digraph
from repro.topology.conflicts import conflict_matrix


@pytest.fixture(scope="module")
def big_adjacency():
    rng = np.random.default_rng(0)
    adj = rng.random((250, 250)) < 0.15
    np.fill_diagonal(adj, False)
    return adj


def test_conflict_matrix_250(benchmark, big_adjacency):
    out = benchmark(conflict_matrix, big_adjacency)
    assert out.shape == (250, 250)


def test_dsatur_150(benchmark):
    rng = np.random.default_rng(1)
    adj = rng.random((150, 150)) < 0.1
    np.fill_diagonal(adj, False)
    conflicts = conflict_matrix(adj)
    colors = benchmark(dsatur_color_matrix, conflicts)
    assert colors.min() >= 1


def test_hungarian_60x80(benchmark):
    rng = np.random.default_rng(2)
    w = np.where(rng.random((60, 80)) < 0.4, rng.integers(1, 10, (60, 80)), 0).astype(float)
    pairs = benchmark(solve_max_weight_dense, w)
    assert pairs


def test_join_recode_throughput(benchmark):
    """One RecodeOnJoin in a 100-node network (the per-event hot path)."""
    rng = np.random.default_rng(3)
    configs = sample_configs(100, rng)
    net = AdHocNetwork(MinimStrategy())
    for cfg in configs[:-1]:
        net.join(cfg)
    last = configs[-1]
    net.graph.add_node(last)

    def recode():
        return plan_local_matching_recode(net.graph, net.assignment, last.node_id)

    plan = benchmark(recode)
    assert last.node_id in plan.changes


def test_grid_index_vs_brute_force(benchmark):
    """Disc query through the grid index (compare with the brute bench)."""
    rng = np.random.default_rng(4)
    pts = rng.uniform(0, 1000, (5000, 2))
    idx = UniformGridIndex(25.0)
    for i, (x, y) in enumerate(pts):
        idx.insert(i, float(x), float(y))
    got = benchmark(idx.query_disc, 500.0, 500.0, 25.0)
    diff = pts - np.array([500.0, 500.0])
    want = int((np.einsum("ij,ij->i", diff, diff) <= 25.0**2).sum())
    assert len(got) == want


def test_brute_force_disc_query(benchmark):
    rng = np.random.default_rng(4)
    pts = rng.uniform(0, 1000, (5000, 2))

    def brute():
        diff = pts - np.array([500.0, 500.0])
        return np.flatnonzero(np.einsum("ij,ij->i", diff, diff) <= 25.0**2)

    assert len(benchmark(brute)) >= 0


def test_despread_throughput(benchmark):
    codes = walsh_codes(64)
    rng = np.random.default_rng(5)
    bits = rng.integers(0, 2, 512)
    chips = spread(bits, codes[7])

    def roundtrip():
        return despread(chips, codes[7])

    corr = benchmark(roundtrip)
    assert np.allclose(np.abs(corr), 1.0)


def test_bulk_digraph_build_200(benchmark):
    rng = np.random.default_rng(6)
    configs = sample_configs(200, rng)
    g = benchmark(build_digraph, configs)
    assert len(g) == 200
