"""Distributed protocol overhead: messages and rounds per event.

Not a paper figure — an extension bench quantifying the "distributed and
local" claim of section 2: Minim's locally-centralized join needs a
constant number of phases, while CP's election can take as many rounds
as its reselect set in the worst case.
"""

import numpy as np

from benchmarks.conftest import RUNS, SEED, run_once
from repro.distributed import run_distributed_cp_join, run_distributed_join
from repro.sim.network import AdHocNetwork
from repro.sim.random_networks import sample_configs
from repro.strategies.minim import MinimStrategy


def _measure(n: int = 60):
    rows = []
    for seed in range(RUNS):
        rng = np.random.default_rng(SEED + seed)
        configs = sample_configs(n, rng)
        net = AdHocNetwork(MinimStrategy())
        for cfg in configs[:-1]:
            net.join(cfg)
        last = configs[-1]
        net.graph.add_node(last)
        join_stats = run_distributed_join(net.graph, net.assignment, last.node_id)
        cp_stats = run_distributed_cp_join(net.graph, net.assignment, last.node_id)
        rows.append(
            (
                join_stats.messages,
                join_stats.rounds,
                cp_stats.messages,
                cp_stats.rounds,
            )
        )
    return rows


def test_join_protocol_overhead(benchmark):
    rows = run_once(benchmark, _measure)
    print("\n=== Distributed overhead per join event (Minim vs CP) ===")
    print(f"{'minim msgs':>11} {'minim rnds':>11} {'cp msgs':>8} {'cp rnds':>8}")
    for m_msg, m_rnd, c_msg, c_rnd in rows:
        print(f"{m_msg:>11} {m_rnd:>11} {c_msg:>8} {c_rnd:>8}")
    # Minim's protocol is phase-bounded: collect/disseminate/commit.
    assert all(m_rnd <= 3 for _m, m_rnd, _c, _r in rows)
    assert all(m_msg > 0 for m_msg, *_rest in rows)
