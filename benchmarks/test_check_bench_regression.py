"""The bench-regression CI gate: throughput ratios and speedup floors."""

from __future__ import annotations

import json

import pytest

from check_bench_regression import main as gate


def _write(path, entries):
    path.write_text(json.dumps(entries))
    return path


@pytest.fixture()
def files(tmp_path):
    entries = [
        {"scenario": "s", "mode": "grid", "events_per_sec": 1000.0},
        {
            "scenario": "warm",
            "mode": "warm",
            "events_per_sec": 2000.0,
            "speedup_vs_cold": 2.0,
        },
    ]
    baseline = _write(tmp_path / "baseline.json", entries)
    fresh = _write(tmp_path / "fresh.json", entries)
    return baseline, fresh


class TestGate:
    def test_identical_runs_pass(self, files):
        baseline, fresh = files
        assert gate(["--baseline", str(baseline), "--fresh", str(fresh)]) == 0

    def test_throughput_regression_fails(self, files, tmp_path):
        baseline, _ = files
        slow = _write(
            tmp_path / "slow.json",
            [{"scenario": "s", "mode": "grid", "events_per_sec": 100.0}],
        )
        assert gate(["--baseline", str(baseline), "--fresh", str(slow)]) == 1

    def test_speedup_floor_pass_and_fail(self, files):
        baseline, fresh = files
        ok = ["--baseline", str(baseline), "--fresh", str(fresh)]
        assert gate(ok + ["--min-speedup", "speedup_vs_cold=1.5"]) == 0
        assert gate(ok + ["--min-speedup", "speedup_vs_cold=2.5"]) == 1

    def test_run_savings_floor_gates_the_adaptive_entry(self, files, tmp_path):
        # the adaptive controller's run-budget ratio is gated exactly
        # like the timing speedups
        entries = [
            {"scenario": "adaptive-sweep", "mode": "fixed", "events_per_sec": 700.0},
            {
                "scenario": "adaptive-sweep",
                "mode": "adaptive",
                "events_per_sec": 700.0,
                "run_savings_vs_fixed": 1.8,
            },
        ]
        baseline = _write(tmp_path / "ab.json", entries)
        fresh = _write(tmp_path / "af.json", entries)
        args = ["--baseline", str(baseline), "--fresh", str(fresh)]
        assert gate(args + ["--min-speedup", "run_savings_vs_fixed=1.2"]) == 0
        assert gate(args + ["--min-speedup", "run_savings_vs_fixed=2.5"]) == 1

    def test_floor_matching_no_entry_fails_the_gate(self, files):
        # a typo'd field (or a bench that stopped emitting it) must not
        # silently disable the speedup gate
        baseline, fresh = files
        args = ["--baseline", str(baseline), "--fresh", str(fresh)]
        assert gate(args + ["--min-speedup", "speedup_vs_nothing=9.9"]) == 1

    @pytest.mark.parametrize("bad", ["speedup_vs_cold=fast", "=1.2", "nofloor"])
    def test_malformed_min_speedup_is_a_usage_error(self, files, bad):
        baseline, fresh = files
        argv = ["--baseline", str(baseline), "--fresh", str(fresh), "--min-speedup", bad]
        with pytest.raises(SystemExit) as exc:
            gate(argv)
        assert exc.value.code == 2
