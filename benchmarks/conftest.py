"""Benchmark harness configuration.

Every figure panel of the paper has one bench below this directory; a
bench regenerates the panel's series (honestly re-running the sweep
under ``benchmark.pedantic`` with a single round), prints the rows, and
asserts the paper's qualitative shape where one is claimed.

Scaling knobs (environment):

* ``REPRO_RUNS``       — runs averaged per data point (default 3 here;
  the paper used 100).
* ``REPRO_FULL_GRID``  — set to 1 to use the paper's full parameter
  grids instead of the reduced defaults.

Reproduce a paper-fidelity run with::

    REPRO_RUNS=100 REPRO_FULL_GRID=1 pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os

import pytest

RUNS = int(os.environ.get("REPRO_RUNS", "3"))
FULL = os.environ.get("REPRO_FULL_GRID", "0") == "1"

# Paper grids vs reduced defaults.
JOIN_N_VALUES = (40, 60, 80, 100, 120) if FULL else (40, 80, 120)
JOIN_N_POINT = 100 if FULL else 60  # N for the range/power sweeps
RANGE_AVGS = (5.0, 15.0, 25.0, 35.0, 45.0, 55.0, 65.0) if FULL else (5.0, 25.0, 45.0, 65.0)
RAISEFACTORS = (1.0, 2.0, 3.0, 4.0, 5.0, 6.0) if FULL else (1.0, 2.0, 4.0, 6.0)
MOVE_N = 40 if FULL else 30
MAXDISPS = (0.0, 10.0, 20.0, 40.0, 60.0, 80.0) if FULL else (0.0, 20.0, 40.0, 80.0)
MOVE_ROUNDS = 10 if FULL else 5
SEED = 2001


def run_once(benchmark, fn):
    """Time ``fn`` exactly once (experiments are seconds-long sweeps)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def emit(series, metric: str, panel: str) -> None:
    """Print one panel's rows in the paper's format."""
    print(f"\n=== {panel} ===")
    print(series.table(metric))


def assert_checks(checks) -> None:
    failed = [c for c in checks if not c.passed]
    for c in checks:
        print(c)
    assert not failed, "; ".join(str(c) for c in failed)


@pytest.fixture(scope="session")
def bench_params():
    return {
        "runs": RUNS,
        "full": FULL,
        "seed": SEED,
    }
