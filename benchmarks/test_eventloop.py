"""Event-loop bench: the four conflict cores, head to head.

Times the strategy-independent event loop (topology mutation + V1
conflict derivation) in all four conflict-maintenance modes, mirroring
what ``minim-cdma bench`` reports, so `--benchmark-compare` runs track
the array core's advantage (and the sparse core's small-N overhead)
over time.
"""

import numpy as np
import pytest

from repro.events.base import JoinEvent
from repro.sim.bench import drive_event_loop
from repro.sim.random_networks import sample_configs

N = 120
SEED = 2001


@pytest.fixture(scope="module")
def join_trace():
    rng = np.random.default_rng(SEED)
    return [JoinEvent(c) for c in sample_configs(N, rng)]


def test_eventloop_join_array(benchmark, join_trace):
    wall = benchmark(drive_event_loop, join_trace, mode="array")
    assert wall > 0.0


def test_eventloop_join_grid(benchmark, join_trace):
    wall = benchmark(drive_event_loop, join_trace, mode="grid")
    assert wall > 0.0


def test_eventloop_join_dense(benchmark, join_trace):
    wall = benchmark(drive_event_loop, join_trace, mode="dense")
    assert wall > 0.0


def test_eventloop_join_sparse(benchmark, join_trace):
    wall = benchmark(drive_event_loop, join_trace, mode="sparse")
    assert wall > 0.0
