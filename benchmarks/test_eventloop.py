"""Event-loop bench: grid/incremental fast path vs the dense hatch.

Times the strategy-independent event loop (topology mutation + V1
conflict derivation) in both conflict-maintenance modes, mirroring what
``minim-cdma bench`` reports, so `--benchmark-compare` runs track the
fast path's advantage over time.
"""

import numpy as np
import pytest

from repro.events.base import JoinEvent
from repro.sim.bench import drive_event_loop
from repro.sim.random_networks import sample_configs

N = 120
SEED = 2001


@pytest.fixture(scope="module")
def join_trace():
    rng = np.random.default_rng(SEED)
    return [JoinEvent(c) for c in sample_configs(N, rng)]


def test_eventloop_join_grid(benchmark, join_trace):
    wall = benchmark(drive_event_loop, join_trace, dense_conflicts=False)
    assert wall > 0.0


def test_eventloop_join_dense(benchmark, join_trace):
    wall = benchmark(drive_event_loop, join_trace, dense_conflicts=True)
    assert wall > 0.0
