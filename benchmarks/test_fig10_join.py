"""Fig 10 — the node-join experiment (panels a-f).

Panels (a-c) sweep the station count N; panels (d-f) sweep the average
transmission range at fixed N.  Metrics: final max color index and total
recodings, per strategy.
"""

from benchmarks.conftest import (
    JOIN_N_POINT,
    JOIN_N_VALUES,
    RANGE_AVGS,
    RUNS,
    SEED,
    assert_checks,
    emit,
    run_once,
)
from repro.analysis.shape_checks import check_join_shapes
from repro.sim.experiments import run_join_experiment, run_range_sweep_experiment


def _join_series():
    return run_join_experiment(JOIN_N_VALUES, runs=RUNS, seed=SEED)


def _range_series():
    return run_range_sweep_experiment(RANGE_AVGS, n=JOIN_N_POINT, runs=RUNS, seed=SEED)


def test_fig10a_max_color_vs_n(benchmark):
    """Fig 10(a): max color index vs N — BBB <= Minim <= CP."""
    series = run_once(benchmark, _join_series)
    emit(series, "max_color", "Fig 10(a) Total # Colors vs N")
    checks = [c for c in check_join_shapes(series) if "max_color" in c.claim]
    assert_checks(checks)


def test_fig10b_recodings_vs_n_all(benchmark):
    """Fig 10(b): total recodings vs N — BBB off the chart."""
    series = run_once(benchmark, _join_series)
    emit(series, "recodings", "Fig 10(b) # Recodings vs N (all strategies)")
    checks = [c for c in check_join_shapes(series) if "BBB" in c.claim and "recodings" in c.claim]
    assert_checks(checks)


def test_fig10c_recodings_vs_n_zoom(benchmark):
    """Fig 10(c): total recodings vs N — Minim vs CP zoom."""
    series = run_once(
        benchmark,
        lambda: run_join_experiment(
            JOIN_N_VALUES, runs=RUNS, seed=SEED, strategies=("Minim", "CP")
        ),
    )
    emit(series, "recodings", "Fig 10(c) # Recodings vs N (Minim vs CP)")
    minim = series.series("recodings", "Minim")
    cp = series.series("recodings", "CP")
    assert all(m <= c for m, c in zip(minim, cp))
    # "an almost linear variation (in N)": the per-join recode rate stays
    # bounded (recodings grow at most ~2x faster than N).
    n0, n1 = series.x_values[0], series.x_values[-1]
    assert minim[-1] / minim[0] <= 2.0 * (n1 / n0)


def test_fig10d_max_color_vs_avg_range(benchmark):
    """Fig 10(d): max color index vs average range."""
    series = run_once(benchmark, _range_series)
    emit(series, "max_color", "Fig 10(d) # Colors vs (minr+maxr)/2")
    # Density drives the palette: colors grow monotonically with range.
    for s in series.strategies():
        colors = series.series("max_color", s)
        assert all(a <= b + 1e-9 for a, b in zip(colors, colors[1:]))
    # BBB stays the best (near-optimal centralized baseline).
    for avg, bbb, minim in zip(
        series.x_values,
        series.series("max_color", "BBB"),
        series.series("max_color", "Minim"),
    ):
        assert bbb <= minim + 2.0, f"avgR={avg}"


def test_fig10e_recodings_vs_avg_range_all(benchmark):
    """Fig 10(e): total recodings vs average range (all strategies)."""
    series = run_once(benchmark, _range_series)
    emit(series, "recodings", "Fig 10(e) # Recodings vs (minr+maxr)/2")
    assert all(
        c <= b
        for c, b in zip(series.series("recodings", "CP"), series.series("recodings", "BBB"))
    )


def test_fig10f_recodings_vs_avg_range_zoom(benchmark):
    """Fig 10(f): total recodings vs average range (Minim vs CP)."""
    series = run_once(
        benchmark,
        lambda: run_range_sweep_experiment(
            RANGE_AVGS, n=JOIN_N_POINT, runs=RUNS, seed=SEED, strategies=("Minim", "CP")
        ),
    )
    emit(series, "recodings", "Fig 10(f) # Recodings vs (minr+maxr)/2 (Minim vs CP)")
    assert all(
        m <= c
        for m, c in zip(series.series("recodings", "Minim"), series.series("recodings", "CP"))
    )
