"""Execute the fenced ``minim-cdma`` CLI examples in README.md and docs/.

The documentation's code blocks are executable claims: this script
extracts every ``minim-cdma`` command from fenced ``sh``/``bash``
blocks, rewrites it into smoke mode (``--runs N`` becomes ``--runs 1``)
and runs it via ``python -m repro`` with the repo's ``src/`` on the
path, one fresh working directory per source file (so a block that
seeds ``store.sqlite`` can be followed by blocks that read it).

A block immediately preceded by ``<!-- doc-check: skip -->`` is exempt
— for install lines, daemon sessions, and deliberately slow commands
already covered elsewhere in CI.  ``console`` blocks (transcripts with
prompts and output) are never executed.

Usage::

    python docs/check_examples.py            # run everything (CI mode)
    python docs/check_examples.py --list     # just print the commands
"""

from __future__ import annotations

import argparse
import re
import shlex
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
SKIP_MARKER = "<!-- doc-check: skip -->"
_FENCE = re.compile(r"^```(\w*)\s*$")
_RUNS = re.compile(r"(--runs)\s+\d+")


@dataclass(frozen=True)
class Example:
    """One runnable command extracted from a doc file."""

    source: Path
    line: int
    command: str  # the original text, continuations joined

    @property
    def smoke_argv(self) -> list[str]:
        """The command as argv, rewritten for smoke execution."""
        text = _RUNS.sub(r"\1 1", self.command)
        args = shlex.split(text, comments=True)
        assert args[0] == "minim-cdma"
        return [sys.executable, "-m", "repro", *args[1:]]


def doc_files() -> list[Path]:
    """README plus every markdown file under docs/, stable order."""
    return [ROOT / "README.md", *sorted((ROOT / "docs").rglob("*.md"))]


def extract_examples(path: Path) -> list[Example]:
    """The ``minim-cdma`` commands in ``path``'s sh/bash fences."""
    examples: list[Example] = []
    lines = path.read_text().splitlines()
    in_block = False
    runnable = skip_next = False
    pending: list[str] = []
    pending_line = 0
    for lineno, raw in enumerate(lines, start=1):
        fence = _FENCE.match(raw.strip())
        if fence and not in_block:
            in_block = True
            runnable = fence.group(1) in ("sh", "bash") and not skip_next
            skip_next = False
            continue
        if fence and in_block:
            in_block = False
            pending = []
            continue
        if not in_block:
            if raw.strip() == SKIP_MARKER:
                skip_next = True
            elif raw.strip():
                skip_next = False
            continue
        if not runnable:
            continue
        stripped = raw.strip()
        if pending:
            pending.append(stripped.rstrip("\\").strip())
            if not stripped.endswith("\\"):
                examples.append(Example(path, pending_line, " ".join(pending)))
                pending = []
        elif stripped.startswith("minim-cdma"):
            if stripped.endswith("\\"):
                pending = [stripped.rstrip("\\").strip()]
                pending_line = lineno
            else:
                examples.append(Example(path, lineno, stripped))
    return examples


def run_examples(examples: list[Example]) -> int:
    """Run every example, one cwd per source file; return failure count."""
    import os

    env = {**os.environ, "PYTHONPATH": str(ROOT / "src")}
    failures = 0
    cwds: dict[Path, str] = {}
    with tempfile.TemporaryDirectory(prefix="doc-check-") as scratch:
        for example in examples:
            cwd = cwds.setdefault(
                example.source, tempfile.mkdtemp(dir=scratch, prefix=example.source.stem + "-")
            )
            rel = example.source.relative_to(ROOT)
            started = time.perf_counter()
            proc = subprocess.run(
                example.smoke_argv, cwd=cwd, env=env, capture_output=True, text=True
            )
            wall = time.perf_counter() - started
            status = "ok" if proc.returncode == 0 else f"FAILED (rc={proc.returncode})"
            print(f"{rel}:{example.line}: {example.command}  [{wall:.1f}s] {status}")
            if proc.returncode != 0:
                failures += 1
                sys.stderr.write(proc.stdout[-2000:] + proc.stderr[-2000:] + "\n")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--list", action="store_true", help="print commands without running")
    args = parser.parse_args(argv)
    examples = [ex for path in doc_files() for ex in extract_examples(path)]
    if not examples:
        print("no minim-cdma examples found — the docs lost their fences?", file=sys.stderr)
        return 1
    if args.list:
        for ex in examples:
            print(f"{ex.source.relative_to(ROOT)}:{ex.line}: {' '.join(ex.smoke_argv[3:])}")
        return 0
    failures = run_examples(examples)
    if failures:
        print(f"\ndoc check FAILED: {failures} example(s) broke", file=sys.stderr)
        return 1
    print(f"\ndoc check passed: {len(examples)} example(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
