#!/usr/bin/env python
"""Scenario-engine tour: the declarative catalog and a custom scenario.

Run:  PYTHONPATH=src python examples/scenario_tour.py

Walks the registered scenario catalog, runs two contrasting built-ins
(clustered placement vs hotspot churn) at a small scale, then defines
and runs a custom spec from scratch — a commuter scenario mixing
waypoint mobility with a power raise.
"""

from dataclasses import replace

from repro.sim import available_scenarios, get_scenario, run_scenario
from repro.sim.scenarios import MobilitySpec, PowerSpec, ScenarioSpec


def shrink(name: str, n: int = 24) -> "ScenarioSpec":
    """A small, fast copy of a registered scenario (for demo purposes)."""
    spec = get_scenario(name)
    return replace(
        spec, n=min(spec.n, n), sweep_values=spec.sweep_values[:2], strategies=("Minim", "CP")
    )


def main() -> None:
    print("registered scenarios:")
    for name in available_scenarios():
        print(f"  {name:<18} {get_scenario(name).description}")

    for name in ("poisson-cluster", "hotspot-churn"):
        print(f"\n=== {name} (shrunk) ===")
        series = run_scenario(shrink(name), runs=2, seed=42)
        print(series.table("max_color"))
        print(series.table("recodings"))

    # A custom scenario: commuters drift between waypoints, then half the
    # network raises power 2x to stay connected (Comaniciu & Poor's
    # cross-layer coupling, expressed declaratively).
    commuters = ScenarioSpec(
        name="commuters",
        description="Waypoint drift followed by a 2x power raise on half the nodes.",
        n=24,
        mobility=MobilitySpec(kind="waypoint", steps=3, speed_min=2.0, speed_max=6.0),
        power=PowerSpec(kind="raise", raisefactor=2.0, fraction=0.5),
        strategies=("Minim", "CP"),
        sweep_axis="steps",
        sweep_values=(1, 3),
    )
    print("\n=== commuters (custom spec) ===")
    series = run_scenario(commuters, runs=2, seed=7)
    print(series.table("max_color"))
    print(series.table("messages"))


if __name__ == "__main__":
    main()
