#!/usr/bin/env python
"""Conference scenario: attendees wander, the code assignment survives.

The paper's introduction motivates ad-hoc networks with "a conference
where members communicate with each other".  Sixty attendees walk a
100 x 100 m hall under a random-waypoint model; we compare the recoding
load the Minim and CP strategies pay to keep the CDMA assignment
collision-free, and chart it.

Run:  python examples/conference_mobility.py
"""

import numpy as np

from repro import AdHocNetwork, CPStrategy, MinimStrategy, sample_configs
from repro.analysis.ascii_plot import ascii_plot
from repro.sim.mobility import RandomWaypointModel

ATTENDEES = 60
STEPS = 40
SEED = 2001


def main() -> None:
    rng = np.random.default_rng(SEED)
    configs = sample_configs(ATTENDEES, rng, min_range=20.5, max_range=30.5)

    nets = {
        "Minim": AdHocNetwork(MinimStrategy()),
        "CP": AdHocNetwork(CPStrategy()),
    }
    for net in nets.values():
        for cfg in configs:
            net.join(cfg)
    baselines = {name: net.metrics.snapshot() for name, net in nets.items()}

    # One shared mobility trace so both strategies see identical walks.
    walkers = RandomWaypointModel(
        configs,
        np.random.default_rng(SEED + 1),
        speed_range=(2.0, 6.0),
        pause_steps=2,
    )
    trace = walkers.run(STEPS)

    cumulative = {name: [] for name in nets}
    for round_events in trace:
        for name, net in nets.items():
            for ev in round_events:
                net.apply(ev)
            delta = baselines[name].delta(net.metrics.snapshot())
            cumulative[name].append(float(delta.total_recodings))

    print(f"conference hall: {ATTENDEES} attendees, {STEPS} mobility steps\n")
    print(ascii_plot(
        cumulative,
        list(range(1, STEPS + 1)),
        title="cumulative recodings under random-waypoint mobility",
        x_label="step",
    ))
    print()
    for name, net in nets.items():
        delta = baselines[name].delta(net.metrics.snapshot())
        print(
            f"{name:>6}: {delta.total_recodings:>5} recodings, "
            f"max code index {net.max_color():>3}, "
            f"assignment valid = {net.is_valid()}"
        )
    minim, cp = cumulative["Minim"][-1], cumulative["CP"][-1]
    print(
        f"\nMinim saved {cp - minim:.0f} code changes over {STEPS} steps "
        f"({cp / max(minim, 1):.1f}x fewer than CP)."
    )


if __name__ == "__main__":
    main()
