#!/usr/bin/env python
"""Power-control scenario: battery-driven range changes + gossip repair.

Nodes periodically *lower* their power to save battery (free — no
recoding, section 4.3) and occasionally *boost* it to restore
connectivity (RecodeOnPowIncrease).  After the churn, a quiet period
runs the section-6 gossip compaction to claw back code reuse.

Run:  python examples/power_control_scenario.py
"""

import numpy as np

from repro import AdHocNetwork, MinimStrategy, sample_configs
from repro.gossip import gossip_compaction, kempe_compaction
from repro.topology.connectivity import has_minimal_connectivity

N = 50
CYCLES = 6
SEED = 11


def main() -> None:
    rng = np.random.default_rng(SEED)
    configs = sample_configs(N, rng, min_range=22.0, max_range=32.0)
    net = AdHocNetwork(MinimStrategy(), validate=True)
    for cfg in configs:
        net.join(cfg)
    print(f"bootstrapped {N} nodes: max code {net.max_color()}, "
          f"{net.metrics.total_recodings} recodings\n")

    for cycle in range(1, CYCLES + 1):
        # Battery saving: a random third of nodes throttle down 20%,
        # but only if Minimal Connectivity survives the cut.
        throttled = boosted = recodes = 0
        for v in rng.choice(net.node_ids(), size=N // 3, replace=False):
            v = int(v)
            new_range = net.graph.range_of(v) * 0.8
            net.set_range(v, new_range)
            if has_minimal_connectivity(net.graph, v):
                throttled += 1
            else:
                # Too aggressive: boost back up 50% to stay connected.
                result = net.set_range(v, new_range * 1.5 / 0.8)
                recodes += result.recode_count
                boosted += 1
        # Traffic burst: a few nodes double their power for throughput.
        for v in rng.choice(net.node_ids(), size=4, replace=False):
            v = int(v)
            result = net.set_range(v, net.graph.range_of(v) * 2.0)
            recodes += result.recode_count
        print(f"cycle {cycle}: {throttled} throttled (free), {boosted} boosted back, "
              f"4 traffic boosts -> {recodes} recodings, max code {net.max_color()}")

    print(f"\nafter churn: max code {net.max_color()}, valid = {net.is_valid()}")

    # Quiet period: local gossip descends colors (paper section 6);
    # the Kempe-swap variant escapes descent deadlocks.
    plain = gossip_compaction(net.graph, net.assignment, rng=rng)
    kempe = kempe_compaction(net.graph, net.assignment, rng=rng)
    print(f"gossip compaction:  {len(plain.recolors)} descents over "
          f"{plain.rounds} rounds -> max code {plain.assignment.max_color()} "
          f"(series {plain.max_color_series})")
    print(f"kempe compaction:   {len(kempe.recolors)} recolors over "
          f"{kempe.rounds} rounds -> max code {kempe.assignment.max_color()}")
    net.assignment = kempe.assignment
    assert net.is_valid()


if __name__ == "__main__":
    main()
