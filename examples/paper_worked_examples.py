#!/usr/bin/env python
"""The paper's worked examples (Figs 4, 6, 7, 9), replayed end to end.

Each section prints the before/after color tables for Minim and the CP
baseline, matching the traces printed in the paper's figures.

Run:  python examples/paper_worked_examples.py
"""

from repro.coloring.assignment import CodeAssignment
from repro.sim.network import AdHocNetwork
from repro.strategies.cp import CPStrategy, plan_cp_join
from repro.strategies.minim import (
    MinimStrategy,
    minimal_join_bound,
    plan_local_matching_recode,
)
from repro.topology.node import NodeConfig
from repro.topology.static import StaticDigraph


def color_table(old: dict, minim: dict, cp: dict) -> str:
    nodes = sorted(set(old) | set(minim) | set(cp))
    rows = [f"{'node':>5} {'old':>5} {'Minim':>6} {'CP':>5}"]
    for v in nodes:
        rows.append(
            f"{v:>5} {old.get(v, '-'):>5} {minim.get(v, '-'):>6} {cp.get(v, '-'):>5}"
        )
    return "\n".join(rows)


def fig4_join() -> None:
    print("=" * 64)
    print("Fig 4 — node 8 joins; Minim recodes 3 nodes, CP recodes 4")
    print("=" * 64)
    graph = StaticDigraph(
        nodes=[1, 2, 3, 4, 5, 6, 7],
        edges=[(1, 2), (3, 4), (5, 6), (7, 4)],
    )
    colors = CodeAssignment({1: 2, 2: 3, 3: 1, 4: 3, 5: 3, 6: 1, 7: 2})
    graph.add_node(8)
    for u in (1, 2, 3, 6, 7):
        graph.add_edge(u, 8)
    graph.add_edge(8, 2)

    minim_plan = plan_local_matching_recode(graph, colors, 8)
    cp_plan = plan_cp_join(graph, colors, 8)
    old = colors.as_dict()
    minim = old | {u: c for u, (_o, c) in minim_plan.changes.items()}
    cp = old | {u: c for u, (_o, c) in cp_plan.changes.items()}
    print(color_table(old, minim, cp))
    print(f"\nminimal recoding bound (Lemma 4.1.1): "
          f"{minimal_join_bound(graph, colors, 8)}")
    print(f"Minim recodings: {len(minim_plan.changes)}  "
          f"CP recodings: {len(cp_plan.changes)}")
    print(f"max color after — Minim: {max(minim.values())}, CP: {max(cp.values())}\n")


def build_fig6(strategy) -> AdHocNetwork:
    net = AdHocNetwork(strategy, validate=True)
    net.graph.add_node(NodeConfig(5, 50.0, 50.0, tx_range=5.0))
    net.assignment.assign(5, 3)
    for cfg, color in [
        (NodeConfig(1, 50.0, 70.0, tx_range=25.0), 1),
        (NodeConfig(2, 50.0, 30.0, tx_range=25.0), 2),
        (NodeConfig(6, 70.0, 50.0, tx_range=15.0), 3),
        (NodeConfig(7, 30.0, 50.0, tx_range=15.0), 3),
    ]:
        net.graph.add_node(cfg)
        net.assignment.assign(cfg.node_id, color)
    return net


def fig6_power_increase() -> None:
    print("=" * 64)
    print("Fig 6 — node 5 raises its range; constraints become {1, 2, 3}")
    print("=" * 64)
    minim_net = build_fig6(MinimStrategy())
    old = minim_net.assignment.as_dict()
    minim_net.set_range(5, 30.0)
    cp_net = build_fig6(CPStrategy(vicinity_colors=True))
    cp_net.set_range(5, 30.0)
    print(color_table(old, minim_net.assignment.as_dict(), cp_net.assignment.as_dict()))
    print(f"\nMinim: 1 recode, max color {minim_net.max_color()} "
          f"(picks the lowest available color)")
    print(f"CP:    2 recodes, max color {cp_net.max_color()} "
          f"(2-hop-vicinity reading; redistributes the duplicates)\n")


def fig7_power_decrease() -> None:
    print("=" * 64)
    print("Fig 7 — a power decrease never needs recoding")
    print("=" * 64)
    net = build_fig6(MinimStrategy())
    result = net.set_range(5, 2.0)
    print(f"changes: {result.changes}  (kind = {result.event_kind})\n")


def fig9_move() -> None:
    print("=" * 64)
    print("Fig 9 — node 2 moves; both strategies recode exactly the mover")
    print("=" * 64)

    def build(strategy):
        net = AdHocNetwork(strategy, validate=True)
        for cfg, color in [
            (NodeConfig(4, 100.0, 10.0, tx_range=25.0), 1),
            (NodeConfig(5, 100.0, -10.0, tx_range=25.0), 2),
            (NodeConfig(6, 110.0, 0.0, tx_range=25.0), 3),
            (NodeConfig(2, 0.0, 0.0, tx_range=15.0), 3),
            (NodeConfig(7, 0.0, 10.0, tx_range=15.0), 1),
        ]:
            net.graph.add_node(cfg)
            net.assignment.assign(cfg.node_id, color)
        return net

    minim_net = build(MinimStrategy())
    old = minim_net.assignment.as_dict()
    minim_net.move(2, 100.0, 0.0)
    cp_net = build(CPStrategy())
    cp_net.move(2, 100.0, 0.0)
    print(color_table(old, minim_net.assignment.as_dict(), cp_net.assignment.as_dict()))
    print(f"\nboth end with max color {minim_net.max_color()}; only node 2 recoded\n")


if __name__ == "__main__":
    fig4_join()
    fig6_power_increase()
    fig7_power_decrease()
    fig9_move()
