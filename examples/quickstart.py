#!/usr/bin/env python
"""Quickstart: build an ad-hoc network, fire every event type, inspect.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    AdHocNetwork,
    MinimStrategy,
    NodeConfig,
    find_violations,
    sample_configs,
)


def main() -> None:
    rng = np.random.default_rng(7)

    # A network driven by the paper's Minim strategy.  validate=True
    # checks CA1/CA2 after every single event.
    net = AdHocNetwork(MinimStrategy(), validate=True)

    # 1. Twenty nodes join one by one (the paper's section 5.1 workload).
    for cfg in sample_configs(20, rng):
        result = net.join(cfg)
        if result.recode_count > 1:
            others = {v: c for v, (_o, c) in result.changes.items() if v != cfg.node_id}
            print(f"join {cfg.node_id:>3}: also recoded {others}")
    print(f"\nafter 20 joins: max code index = {net.max_color()}, "
          f"total recodings = {net.metrics.total_recodings}")

    # 2. A node moves across the arena (RecodeOnMove, Fig 8).
    mover = net.node_ids()[0]
    result = net.move(mover, 50.0, 50.0)
    print(f"move {mover} -> (50, 50): recoded {result.recoded_nodes or 'nobody'}")

    # 3. A node doubles its transmission power (RecodeOnPowIncrease, Fig 5).
    booster = net.node_ids()[1]
    result = net.set_range(booster, net.graph.range_of(booster) * 2)
    print(f"power up {booster}: recoded {result.recoded_nodes or 'nobody'}")

    # 4. A node leaves; no recoding is ever needed (section 4.3).
    leaver = net.node_ids()[2]
    result = net.leave(leaver)
    assert result.recode_count == 0

    # 5. A brand-new node joins a specific spot.
    net.join(NodeConfig(999, 52.0, 48.0, tx_range=25.0))

    # The assignment is provably collision-free:
    assert not find_violations(net.graph, net.assignment)
    print(f"\nfinal network: {len(net.graph)} nodes, "
          f"{net.graph.edge_count()} directed edges, "
          f"max code index {net.max_color()}, valid = {net.is_valid()}")
    print("\nper-event metrics kept by the collector:")
    for record in net.metrics.records[-5:]:
        print(f"  {record.kind:<15} node={record.node:<4} "
              f"recodings={record.recodings} max_color={record.max_color_after}")


if __name__ == "__main__":
    main()
