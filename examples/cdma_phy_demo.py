#!/usr/bin/env python
"""Physical-layer demo: why CA1/CA2 coloring equals collision freedom.

The paper treats "orthogonal codes eliminate collisions" as an axiom.
This demo exercises the actual Walsh-code machinery:

1. every transmitter spreads a payload with its assigned code and all
   transmit *simultaneously*;
2. with a CA1/CA2-valid assignment, every silent receiver decodes every
   in-range transmitter perfectly;
3. corrupting one code (forcing a hidden conflict) garbles packets at
   the shared receiver.

Run:  python examples/cdma_phy_demo.py
"""

import numpy as np

from repro import AdHocNetwork, MinimStrategy, sample_configs
from repro.cdma import Codebook, simulate_slot
from repro.cdma.spreading import despread, spread
from repro.cdma.walsh import walsh_codes

SEED = 5


def show_orthogonality() -> None:
    print("=" * 64)
    print("Walsh codes: exact multi-user separation")
    print("=" * 64)
    codes = walsh_codes(8)
    rng = np.random.default_rng(SEED)
    payloads = rng.integers(0, 2, (3, 8))
    mixed = sum(spread(payloads[u], codes[u + 1]) for u in range(3))
    for u in range(3):
        corr = despread(mixed, codes[u + 1])
        decoded = (corr > 0).astype(int)
        ok = (decoded == payloads[u]).all()
        print(f"user {u + 1}: sent {payloads[u].tolist()} -> "
              f"correlations {np.round(corr, 2).tolist()} ok={ok}")
    print()


def network_slot_demo() -> None:
    print("=" * 64)
    print("Network slot: valid assignment vs corrupted assignment")
    print("=" * 64)
    rng = np.random.default_rng(SEED)
    net = AdHocNetwork(MinimStrategy())
    for cfg in sample_configs(25, rng):
        net.join(cfg)
    print(f"{len(net.graph)} nodes, max code {net.max_color()}, "
          f"codebook chips/bit = {Codebook.for_max_color(net.max_color()).chip_length}")

    transmitters = net.node_ids()[::2]
    payloads = {tx: rng.integers(0, 2, 8).tolist() for tx in transmitters}
    reports = simulate_slot(net.graph, net.assignment, payloads)
    silent = [r for r in reports if r.receiver not in payloads]
    print(f"\nvalid assignment, {len(transmitters)} simultaneous transmitters:")
    print(f"  receptions at silent receivers: {len(silent)}, "
          f"all decoded = {all(r.success for r in silent)}")
    busy = [r for r in reports if r.receiver in payloads]
    print(f"  primary collisions at transmitting receivers: "
          f"{sum(r.reason == 'primary_collision' for r in busy)} (expected: half-duplex)")

    # Corrupt: give one transmitter a code already used by a peer that
    # shares one of its receivers.
    corrupt = net.assignment.copy()
    victim = None
    for rx in net.node_ids():
        senders = [tx for tx in transmitters if net.graph.has_edge(tx, rx)]
        if len(senders) >= 2 and rx not in payloads:
            victim = (senders[0], senders[1], rx)
            corrupt.assign(senders[1], corrupt[senders[0]])
            break
    assert victim, "no shared receiver found — rerun with another seed"
    a, b, rx = victim
    reports = simulate_slot(net.graph, corrupt, payloads)
    garbled = [r for r in reports if not r.success and r.reason == "hidden_collision"]
    print(f"\ncorrupted assignment (nodes {a} and {b} share a code, both reach {rx}):")
    print(f"  hidden collisions now: {len(garbled)} "
          f"(e.g. {garbled[0].transmitter}->{garbled[0].receiver})")
    print("\nconclusion: CA1/CA2-valid coloring <=> collision-free slots.")


if __name__ == "__main__":
    show_orthogonality()
    network_slot_demo()
